//! MSI directory for the private L1 data caches.
//!
//! The directory is the bus-level authority on which cores hold which lines,
//! driving invalidation and cache-to-cache-transfer timing. The paper's
//! software barriers live or die by this traffic (shared counters ping-pong
//! between cores), and its Livermore partitionings are chosen "so cache
//! lines will only need to be transferred between cores at most once"
//! (§4.4) — behaviour this module makes observable.

use crate::fastmap::FxHashMap;

/// Who holds a line, as seen by the bus/directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirEntry {
    /// Bitmask of cores holding the line in Shared state.
    pub sharers: u64,
    /// Core holding the line in Modified state, if any. When set, `sharers`
    /// is zero.
    pub owner: Option<u8>,
}

impl DirEntry {
    /// Entry with no holders.
    pub const EMPTY: DirEntry = DirEntry {
        sharers: 0,
        owner: None,
    };

    /// Whether no L1 holds the line.
    pub fn is_empty(&self) -> bool {
        self.sharers == 0 && self.owner.is_none()
    }

    /// Number of cores sharing the line.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }
}

/// Directory statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Invalidation rounds sent to sharers so a writer could take ownership.
    pub upgrade_invalidations: u64,
    /// Individual sharer copies invalidated by upgrades.
    pub copies_invalidated: u64,
    /// Reads satisfied by a dirty remote L1 (cache-to-cache transfer).
    pub dirty_transfers: u64,
}

/// MSI directory over all L1 data caches.
///
/// Looked up on every miss, upgrade and fill delivery; the line-keyed map
/// uses the engine's deterministic fast hasher (`fastmap`) since
/// SipHash here was a measurable slice of whole-simulation runtime.
#[derive(Debug, Default)]
pub struct Directory {
    entries: FxHashMap<u64, DirEntry>,
    stats: DirectoryStats,
}

/// What the requesting core must do, as computed by the directory, before a
/// read or write can complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// No other L1 holds the line dirty; fill from the L2/L3/memory path.
    FromHierarchy,
    /// Another core holds the line Modified: it supplies the data
    /// (cache-to-cache) and downgrades to Shared.
    FromOwner(u8),
}

/// Effect of a write request on other caches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Cores whose Shared copies must be invalidated.
    pub invalidate: Vec<u8>,
    /// Core holding the line Modified (data source + invalidate), if any.
    pub dirty_owner: Option<u8>,
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Current entry for a line.
    pub fn entry(&self, line: u64) -> DirEntry {
        self.entries.get(&line).copied().unwrap_or(DirEntry::EMPTY)
    }

    /// Core `core` wants to read `line`. Updates the directory (core becomes
    /// a sharer; a dirty owner is downgraded) and reports where the data
    /// comes from.
    pub fn read(&mut self, core: u8, line: u64) -> ReadOutcome {
        let e = self.entries.entry(line).or_insert(DirEntry::EMPTY);
        match e.owner {
            Some(owner) if owner != core => {
                // Remote dirty: downgrade owner to sharer; requester joins.
                e.sharers |= (1 << owner) | (1 << core);
                e.owner = None;
                self.stats.dirty_transfers += 1;
                ReadOutcome::FromOwner(owner)
            }
            Some(_) => {
                // Already own it dirty; keep M (read hit path normally, but a
                // directory read on own M line can happen after L1 eviction
                // races — treat as hierarchy fill).
                ReadOutcome::FromHierarchy
            }
            None => {
                e.sharers |= 1 << core;
                ReadOutcome::FromHierarchy
            }
        }
    }

    /// Core `core` wants to write `line` (fetch-exclusive or upgrade).
    /// Updates the directory (core becomes sole Modified owner) and reports
    /// which remote copies must be invalidated / supply data.
    pub fn write(&mut self, core: u8, line: u64) -> WriteOutcome {
        let e = self.entries.entry(line).or_insert(DirEntry::EMPTY);
        let mut invalidate = Vec::new();
        let mut dirty_owner = None;
        match e.owner {
            Some(owner) if owner != core => dirty_owner = Some(owner),
            _ => {}
        }
        let others = e.sharers & !(1 << core);
        if others != 0 {
            for c in 0..64u8 {
                if others & (1 << c) != 0 {
                    invalidate.push(c);
                }
            }
            self.stats.upgrade_invalidations += 1;
            self.stats.copies_invalidated += invalidate.len() as u64;
        }
        if dirty_owner.is_some() {
            self.stats.dirty_transfers += 1;
        }
        *e = DirEntry {
            sharers: 0,
            owner: Some(core),
        };
        WriteOutcome {
            invalidate,
            dirty_owner,
        }
    }

    /// Core `core` dropped `line` from its L1 (eviction). Returns `true` if
    /// the line was held Modified (a writeback is required).
    pub fn evict(&mut self, core: u8, line: u64) -> bool {
        let Some(e) = self.entries.get_mut(&line) else {
            return false;
        };
        let was_dirty = e.owner == Some(core);
        if was_dirty {
            e.owner = None;
        }
        e.sharers &= !(1 << core);
        if e.is_empty() {
            self.entries.remove(&line);
        }
        was_dirty
    }

    /// Remove every copy of `line` from every L1 (an explicit `dcbi`).
    /// Returns the cores that held it and whether a writeback is required.
    pub fn invalidate_all(&mut self, line: u64) -> (Vec<u8>, bool) {
        let Some(e) = self.entries.remove(&line) else {
            return (Vec::new(), false);
        };
        let mut holders = Vec::new();
        for c in 0..64u8 {
            if e.sharers & (1 << c) != 0 {
                holders.push(c);
            }
        }
        let dirty = e.owner.is_some();
        if let Some(owner) = e.owner {
            holders.push(owner);
        }
        (holders, dirty)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DirectoryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_makes_sharer() {
        let mut d = Directory::new();
        assert_eq!(d.read(3, 10), ReadOutcome::FromHierarchy);
        let e = d.entry(10);
        assert_eq!(e.sharers, 1 << 3);
        assert_eq!(e.owner, None);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.read(0, 10);
        d.read(1, 10);
        d.read(2, 10);
        let w = d.write(1, 10);
        assert_eq!(w.invalidate, vec![0, 2]);
        assert_eq!(w.dirty_owner, None);
        let e = d.entry(10);
        assert_eq!(e.owner, Some(1));
        assert_eq!(e.sharers, 0);
        assert_eq!(d.stats().upgrade_invalidations, 1);
        assert_eq!(d.stats().copies_invalidated, 2);
    }

    #[test]
    fn read_of_dirty_line_downgrades_owner() {
        let mut d = Directory::new();
        d.write(5, 20);
        assert_eq!(d.read(6, 20), ReadOutcome::FromOwner(5));
        let e = d.entry(20);
        assert_eq!(e.owner, None);
        assert_eq!(e.sharers, (1 << 5) | (1 << 6));
        assert_eq!(d.stats().dirty_transfers, 1);
    }

    #[test]
    fn write_steals_dirty_line() {
        let mut d = Directory::new();
        d.write(0, 30);
        let w = d.write(1, 30);
        assert_eq!(w.dirty_owner, Some(0));
        assert!(w.invalidate.is_empty());
        assert_eq!(d.entry(30).owner, Some(1));
    }

    #[test]
    fn eviction_clears_holder() {
        let mut d = Directory::new();
        d.write(2, 40);
        assert!(d.evict(2, 40), "dirty eviction needs writeback");
        assert!(d.entry(40).is_empty());
        d.read(3, 41);
        assert!(!d.evict(3, 41), "clean eviction is silent");
        assert!(!d.evict(3, 41), "double evict is a no-op");
    }

    #[test]
    fn invalidate_all_reports_holders_and_dirtiness() {
        let mut d = Directory::new();
        d.read(0, 50);
        d.read(1, 50);
        let (holders, dirty) = d.invalidate_all(50);
        assert_eq!(holders, vec![0, 1]);
        assert!(!dirty);
        d.write(4, 51);
        let (holders, dirty) = d.invalidate_all(51);
        assert_eq!(holders, vec![4]);
        assert!(dirty);
        assert_eq!(d.invalidate_all(52), (Vec::new(), false));
    }

    #[test]
    fn own_write_after_read_has_no_invalidations() {
        let mut d = Directory::new();
        d.read(7, 60);
        let w = d.write(7, 60);
        assert!(w.invalidate.is_empty());
        assert_eq!(w.dirty_owner, None);
    }
}
