//! MSI directory for the private L1 data caches.
//!
//! The directory is the bus-level authority on which cores hold which lines,
//! driving invalidation and cache-to-cache-transfer timing. The paper's
//! software barriers live or die by this traffic (shared counters ping-pong
//! between cores), and its Livermore partitionings are chosen "so cache
//! lines will only need to be transferred between cores at most once"
//! (§4.4) — behaviour this module makes observable.
//!
//! Sharer sets are a single `u64` bitmask while every holder's index fits
//! in one word (the common case, and the only case on the flat Table-2
//! machine), widening to a boxed multi-word mask the first time a core
//! ≥ 64 joins — this is what lifted the old hard `num_cores > 64`
//! rejection without taxing small configs.

use crate::fastmap::FxHashMap;

/// Set of core indices holding a line in Shared state.
///
/// Iteration order is always ascending core index, matching the old
/// fixed `0..64` scan bit-for-bit on narrow machines — invalidation
/// lists derived from this set are part of deterministic event order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharerSet {
    /// Cores 0–63 as a bitmask (the flat-machine fast path).
    Mask(u64),
    /// Arbitrary core indices, 64 per word.
    Wide(Box<[u64]>),
}

impl SharerSet {
    /// The empty set.
    pub const EMPTY: SharerSet = SharerSet::Mask(0);

    /// Whether `core` is in the set.
    pub fn contains(&self, core: u16) -> bool {
        let (word, bit) = (core as usize / 64, core as usize % 64);
        match self {
            SharerSet::Mask(m) => word == 0 && m & (1 << bit) != 0,
            SharerSet::Wide(w) => w.get(word).is_some_and(|&v| v & (1 << bit) != 0),
        }
    }

    /// Insert `core`, widening the representation if its index does not
    /// fit the single-word mask.
    pub fn insert(&mut self, core: u16) {
        let (word, bit) = (core as usize / 64, core as usize % 64);
        match self {
            SharerSet::Mask(m) if word == 0 => *m |= 1 << bit,
            SharerSet::Mask(m) => {
                let mut words = vec![0u64; word + 1];
                words[0] = *m;
                words[word] |= 1 << bit;
                *self = SharerSet::Wide(words.into_boxed_slice());
            }
            SharerSet::Wide(w) => {
                if w.len() <= word {
                    let mut words = w.to_vec();
                    words.resize(word + 1, 0);
                    *w = words.into_boxed_slice();
                }
                w[word] |= 1 << bit;
            }
        }
    }

    /// Remove `core` if present.
    pub fn remove(&mut self, core: u16) {
        let (word, bit) = (core as usize / 64, core as usize % 64);
        match self {
            SharerSet::Mask(m) => {
                if word == 0 {
                    *m &= !(1 << bit);
                }
            }
            SharerSet::Wide(w) => {
                if let Some(v) = w.get_mut(word) {
                    *v &= !(1 << bit);
                }
            }
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        match self {
            SharerSet::Mask(m) => *m == 0,
            SharerSet::Wide(w) => w.iter().all(|&v| v == 0),
        }
    }

    /// Number of cores in the set.
    pub fn count(&self) -> u32 {
        match self {
            SharerSet::Mask(m) => m.count_ones(),
            SharerSet::Wide(w) => w.iter().map(|v| v.count_ones()).sum(),
        }
    }

    /// Visit every member in ascending core order.
    pub fn for_each(&self, mut f: impl FnMut(u16)) {
        let words: &[u64] = match self {
            SharerSet::Mask(m) => std::slice::from_ref(m),
            SharerSet::Wide(w) => w,
        };
        for (i, &word) in words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                f((i * 64 + bits.trailing_zeros() as usize) as u16);
                bits &= bits - 1;
            }
        }
    }
}

/// Who holds a line, as seen by the bus/directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Cores holding the line in Shared state.
    pub sharers: SharerSet,
    /// Core holding the line in Modified state, if any. When set, `sharers`
    /// is empty.
    pub owner: Option<u16>,
}

impl DirEntry {
    /// Entry with no holders.
    pub const EMPTY: DirEntry = DirEntry {
        sharers: SharerSet::EMPTY,
        owner: None,
    };

    /// Whether no L1 holds the line.
    pub fn is_empty(&self) -> bool {
        self.sharers.is_empty() && self.owner.is_none()
    }

    /// Number of cores sharing the line.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count()
    }
}

/// Directory statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Invalidation rounds sent to sharers so a writer could take ownership.
    pub upgrade_invalidations: u64,
    /// Individual sharer copies invalidated by upgrades.
    pub copies_invalidated: u64,
    /// Reads satisfied by a dirty remote L1 (cache-to-cache transfer).
    pub dirty_transfers: u64,
}

/// MSI directory over all L1 data caches.
///
/// Looked up on every miss, upgrade and fill delivery; the line-keyed map
/// uses the engine's deterministic fast hasher (`fastmap`) since
/// SipHash here was a measurable slice of whole-simulation runtime.
#[derive(Debug, Default)]
pub struct Directory {
    entries: FxHashMap<u64, DirEntry>,
    stats: DirectoryStats,
}

/// What the requesting core must do, as computed by the directory, before a
/// read or write can complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// No other L1 holds the line dirty; fill from the L2/L3/memory path.
    FromHierarchy,
    /// Another core holds the line Modified: it supplies the data
    /// (cache-to-cache) and downgrades to Shared.
    FromOwner(u16),
}

/// Effect of a write request on other caches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Cores whose Shared copies must be invalidated (ascending).
    pub invalidate: Vec<u16>,
    /// Core holding the line Modified (data source + invalidate), if any.
    pub dirty_owner: Option<u16>,
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Current entry for a line.
    pub fn entry(&self, line: u64) -> DirEntry {
        self.entries.get(&line).cloned().unwrap_or(DirEntry::EMPTY)
    }

    /// Whether `core` holds `line` in Shared state.
    pub fn is_sharer(&self, core: u16, line: u64) -> bool {
        self.entries
            .get(&line)
            .is_some_and(|e| e.sharers.contains(core))
    }

    /// The core holding `line` Modified, if any.
    pub fn owner_of(&self, line: u64) -> Option<u16> {
        self.entries.get(&line).and_then(|e| e.owner)
    }

    /// Core `core` wants to read `line`. Updates the directory (core becomes
    /// a sharer; a dirty owner is downgraded) and reports where the data
    /// comes from.
    pub fn read(&mut self, core: u16, line: u64) -> ReadOutcome {
        let e = self.entries.entry(line).or_insert(DirEntry::EMPTY);
        match e.owner {
            Some(owner) if owner != core => {
                // Remote dirty: downgrade owner to sharer; requester joins.
                e.sharers.insert(owner);
                e.sharers.insert(core);
                e.owner = None;
                self.stats.dirty_transfers += 1;
                ReadOutcome::FromOwner(owner)
            }
            Some(_) => {
                // Already own it dirty; keep M (read hit path normally, but a
                // directory read on own M line can happen after L1 eviction
                // races — treat as hierarchy fill).
                ReadOutcome::FromHierarchy
            }
            None => {
                e.sharers.insert(core);
                ReadOutcome::FromHierarchy
            }
        }
    }

    /// Core `core` wants to write `line` (fetch-exclusive or upgrade).
    /// Updates the directory (core becomes sole Modified owner) and reports
    /// which remote copies must be invalidated / supply data.
    pub fn write(&mut self, core: u16, line: u64) -> WriteOutcome {
        let e = self.entries.entry(line).or_insert(DirEntry::EMPTY);
        let mut invalidate = Vec::new();
        let mut dirty_owner = None;
        match e.owner {
            Some(owner) if owner != core => dirty_owner = Some(owner),
            _ => {}
        }
        e.sharers.for_each(|c| {
            if c != core {
                invalidate.push(c);
            }
        });
        if !invalidate.is_empty() {
            self.stats.upgrade_invalidations += 1;
            self.stats.copies_invalidated += invalidate.len() as u64;
        }
        if dirty_owner.is_some() {
            self.stats.dirty_transfers += 1;
        }
        *e = DirEntry {
            sharers: SharerSet::EMPTY,
            owner: Some(core),
        };
        WriteOutcome {
            invalidate,
            dirty_owner,
        }
    }

    /// Core `core` dropped `line` from its L1 (eviction). Returns `true` if
    /// the line was held Modified (a writeback is required).
    pub fn evict(&mut self, core: u16, line: u64) -> bool {
        let Some(e) = self.entries.get_mut(&line) else {
            return false;
        };
        let was_dirty = e.owner == Some(core);
        if was_dirty {
            e.owner = None;
        }
        e.sharers.remove(core);
        if e.is_empty() {
            self.entries.remove(&line);
        }
        was_dirty
    }

    /// Remove every copy of `line` from every L1 (an explicit `dcbi`).
    /// Returns the cores that held it (sharers ascending, then the owner)
    /// and whether a writeback is required.
    pub fn invalidate_all(&mut self, line: u64) -> (Vec<u16>, bool) {
        let Some(e) = self.entries.remove(&line) else {
            return (Vec::new(), false);
        };
        let mut holders = Vec::new();
        e.sharers.for_each(|c| holders.push(c));
        let dirty = e.owner.is_some();
        if let Some(owner) = e.owner {
            holders.push(owner);
        }
        (holders, dirty)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DirectoryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_makes_sharer() {
        let mut d = Directory::new();
        assert_eq!(d.read(3, 10), ReadOutcome::FromHierarchy);
        let e = d.entry(10);
        assert!(e.sharers.contains(3));
        assert_eq!(e.sharer_count(), 1);
        assert_eq!(e.owner, None);
        assert!(d.is_sharer(3, 10));
        assert!(!d.is_sharer(4, 10));
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.read(0, 10);
        d.read(1, 10);
        d.read(2, 10);
        let w = d.write(1, 10);
        assert_eq!(w.invalidate, vec![0, 2]);
        assert_eq!(w.dirty_owner, None);
        let e = d.entry(10);
        assert_eq!(e.owner, Some(1));
        assert!(e.sharers.is_empty());
        assert_eq!(d.owner_of(10), Some(1));
        assert_eq!(d.stats().upgrade_invalidations, 1);
        assert_eq!(d.stats().copies_invalidated, 2);
    }

    #[test]
    fn read_of_dirty_line_downgrades_owner() {
        let mut d = Directory::new();
        d.write(5, 20);
        assert_eq!(d.read(6, 20), ReadOutcome::FromOwner(5));
        let e = d.entry(20);
        assert_eq!(e.owner, None);
        assert!(e.sharers.contains(5) && e.sharers.contains(6));
        assert_eq!(e.sharer_count(), 2);
        assert_eq!(d.stats().dirty_transfers, 1);
    }

    #[test]
    fn write_steals_dirty_line() {
        let mut d = Directory::new();
        d.write(0, 30);
        let w = d.write(1, 30);
        assert_eq!(w.dirty_owner, Some(0));
        assert!(w.invalidate.is_empty());
        assert_eq!(d.entry(30).owner, Some(1));
    }

    #[test]
    fn eviction_clears_holder() {
        let mut d = Directory::new();
        d.write(2, 40);
        assert!(d.evict(2, 40), "dirty eviction needs writeback");
        assert!(d.entry(40).is_empty());
        d.read(3, 41);
        assert!(!d.evict(3, 41), "clean eviction is silent");
        assert!(!d.evict(3, 41), "double evict is a no-op");
    }

    #[test]
    fn invalidate_all_reports_holders_and_dirtiness() {
        let mut d = Directory::new();
        d.read(0, 50);
        d.read(1, 50);
        let (holders, dirty) = d.invalidate_all(50);
        assert_eq!(holders, vec![0, 1]);
        assert!(!dirty);
        d.write(4, 51);
        let (holders, dirty) = d.invalidate_all(51);
        assert_eq!(holders, vec![4]);
        assert!(dirty);
        assert_eq!(d.invalidate_all(52), (Vec::new(), false));
    }

    #[test]
    fn own_write_after_read_has_no_invalidations() {
        let mut d = Directory::new();
        d.read(7, 60);
        let w = d.write(7, 60);
        assert!(w.invalidate.is_empty());
        assert_eq!(w.dirty_owner, None);
    }

    #[test]
    fn cores_beyond_64_widen_the_sharer_set() {
        let mut d = Directory::new();
        d.read(3, 70);
        d.read(700, 70);
        d.read(64, 70);
        let e = d.entry(70);
        assert_eq!(e.sharer_count(), 3);
        assert!(e.sharers.contains(3));
        assert!(e.sharers.contains(64));
        assert!(e.sharers.contains(700));
        assert!(!e.sharers.contains(63));
        let w = d.write(64, 70);
        assert_eq!(w.invalidate, vec![3, 700], "ascending core order");
        assert_eq!(d.owner_of(70), Some(64));
        assert_eq!(d.read(1000, 70), ReadOutcome::FromOwner(64));
    }

    #[test]
    fn wide_set_supports_removal_and_invalidate_all() {
        let mut d = Directory::new();
        for c in [0u16, 63, 64, 127, 1023] {
            d.read(c, 80);
        }
        assert!(!d.evict(64, 80));
        let (holders, dirty) = d.invalidate_all(80);
        assert_eq!(holders, vec![0, 63, 127, 1023]);
        assert!(!dirty);
    }

    #[test]
    fn sharer_set_round_trips() {
        let mut s = SharerSet::EMPTY;
        assert!(s.is_empty());
        s.insert(5);
        s.insert(200);
        s.insert(5);
        assert_eq!(s.count(), 2);
        let mut seen = Vec::new();
        s.for_each(|c| seen.push(c));
        assert_eq!(seen, vec![5, 200]);
        s.remove(5);
        s.remove(77); // absent: no-op
        assert_eq!(s.count(), 1);
        assert!(!s.contains(5));
        assert!(s.contains(200));
    }
}
