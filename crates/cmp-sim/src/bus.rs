//! Shared-bus and bank-port arbitration.
//!
//! Every shared resource in the machine (the core↔L2 bus, each L2 bank's tag
//! port, each bank's hook/filter port, the L3 port) is modeled as a
//! [`Resource`]: a FIFO next-free-cycle arbiter. A request arriving at cycle
//! `t` is granted at `max(t, next_free)` and occupies the resource for its
//! duration. Because the engine processes events in global time order,
//! grant order tracks arrival order, and queueing delay — the quantity whose
//! growth saturates Figure 4 beyond 16 cores — emerges naturally.

/// Occupancy-based FIFO arbiter for one shared resource.
#[derive(Debug, Default)]
pub struct Resource {
    next_free: u64,
    stats: ResourceStats,
}

/// Utilization counters for a [`Resource`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResourceStats {
    /// Number of grants.
    pub grants: u64,
    /// Total cycles of occupancy granted.
    pub busy_cycles: u64,
    /// Total cycles requests spent waiting for the grant.
    pub wait_cycles: u64,
}

impl ResourceStats {
    /// Mean queueing delay per grant.
    pub fn mean_wait(&self) -> f64 {
        if self.grants == 0 {
            0.0
        } else {
            self.wait_cycles as f64 / self.grants as f64
        }
    }
}

impl Resource {
    /// A resource that is free at cycle zero.
    pub fn new() -> Resource {
        Resource::default()
    }

    /// Request the resource at cycle `now` for `cycles` cycles of occupancy.
    /// Returns the grant cycle; the resource is busy until
    /// `grant + cycles`.
    pub fn acquire(&mut self, now: u64, cycles: u64) -> u64 {
        let grant = now.max(self.next_free);
        self.next_free = grant + cycles;
        self.stats.grants += 1;
        self.stats.busy_cycles += cycles;
        self.stats.wait_cycles += grant - now;
        grant
    }

    /// Cycle at which the resource next becomes free.
    pub fn next_free(&self) -> u64 {
        self.next_free
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ResourceStats {
        self.stats
    }
}

/// The hierarchical interconnect: one address/data bus pair per cluster
/// plus a shared global segment connecting the clusters.
///
/// Every transaction arbitrates its origin cluster's bus; a transaction
/// whose destination lies in another cluster then crosses to the global
/// segment (paying [`HopLatency::cross_cluster`] each way) and arbitrates
/// the destination cluster's bus. Hop latencies are additive constants on
/// top of the FIFO [`Resource`] arbitration.
///
/// With one cluster and zero hop latencies this degenerates to exactly
/// the original single shared bus: one `acquire` per transaction, the
/// global segment never touched — which is what keeps the flat Table-2
/// digests bit-identical through the topology refactor.
///
/// [`HopLatency::cross_cluster`]: crate::config::HopLatency
#[derive(Debug)]
pub struct Interconnect {
    cluster_addr: Vec<Resource>,
    cluster_data: Vec<Resource>,
    global_addr: Resource,
    global_data: Resource,
    hop: crate::config::HopLatency,
    cmd_cycles: u64,
    data_cycles: u64,
}

impl Interconnect {
    /// An idle interconnect for `clusters` clusters.
    pub fn new(
        clusters: usize,
        hop: crate::config::HopLatency,
        bus: crate::config::BusConfig,
    ) -> Interconnect {
        Interconnect {
            cluster_addr: (0..clusters).map(|_| Resource::new()).collect(),
            cluster_data: (0..clusters).map(|_| Resource::new()).collect(),
            global_addr: Resource::new(),
            global_data: Resource::new(),
            hop,
            cmd_cycles: bus.cmd_cycles,
            data_cycles: bus.data_cycles,
        }
    }

    /// Route a command (request/ack) issued in cluster `from` at cycle `t`
    /// to a destination in cluster `to`. Returns the cycle the command
    /// arrives at the destination.
    pub fn cmd(&mut self, from: usize, to: usize, t: u64) -> u64 {
        let cy = self.cmd_cycles;
        let g = self.cluster_addr[from].acquire(t + self.hop.intra_tile, cy);
        let local = g + cy + self.hop.intra_cluster;
        if from == to {
            return local;
        }
        let g2 = self.global_addr.acquire(local + self.hop.cross_cluster, cy);
        let g3 = self.cluster_addr[to].acquire(g2 + cy + self.hop.cross_cluster, cy);
        g3 + cy + self.hop.intra_cluster
    }

    /// Route a broadcast command (an invalidation that every cache and
    /// bank must observe) issued in cluster `from` at cycle `t`. Returns
    /// the cycle the broadcast has reached every cluster. Remote cluster
    /// buses snoop the global segment rather than re-arbitrating it, so a
    /// broadcast costs one local grant plus (beyond one cluster) one
    /// global grant.
    pub fn broadcast_cmd(&mut self, from: usize, t: u64) -> u64 {
        let cy = self.cmd_cycles;
        let g = self.cluster_addr[from].acquire(t + self.hop.intra_tile, cy);
        let local = g + cy + self.hop.intra_cluster;
        if self.cluster_addr.len() == 1 {
            return local;
        }
        let g2 = self.global_addr.acquire(local + self.hop.cross_cluster, cy);
        g2 + cy + self.hop.cross_cluster + self.hop.intra_cluster
    }

    /// Move one cache line from cluster `from` to cluster `to` starting at
    /// cycle `t`. Returns the cycle the transfer completes at the
    /// destination.
    pub fn data(&mut self, from: usize, to: usize, t: u64) -> u64 {
        let cy = self.data_cycles;
        let g = self.cluster_data[from].acquire(t, cy);
        let local = g + cy + self.hop.intra_cluster;
        if from == to {
            return local + self.hop.intra_tile;
        }
        let g2 = self.global_data.acquire(local + self.hop.cross_cluster, cy);
        let g3 = self.cluster_data[to].acquire(g2 + cy + self.hop.cross_cluster, cy);
        g3 + cy + self.hop.intra_cluster + self.hop.intra_tile
    }

    /// Summed address-side stats across cluster buses and the global
    /// segment. [`ResourceStats`] counters are additive, so on the
    /// degenerate one-cluster topology this equals the flat machine's
    /// single-bus stats exactly (the global segment stays at zero).
    pub fn addr_stats(&self) -> ResourceStats {
        sum_stats(
            self.cluster_addr
                .iter()
                .chain(std::iter::once(&self.global_addr)),
        )
    }

    /// Summed data-side stats (see [`Interconnect::addr_stats`]).
    pub fn data_stats(&self) -> ResourceStats {
        sum_stats(
            self.cluster_data
                .iter()
                .chain(std::iter::once(&self.global_data)),
        )
    }

    /// Stats of the global segment alone (address, data) — the
    /// cross-cluster saturation signal.
    pub fn global_stats(&self) -> (ResourceStats, ResourceStats) {
        (self.global_addr.stats(), self.global_data.stats())
    }
}

fn sum_stats<'a>(resources: impl Iterator<Item = &'a Resource>) -> ResourceStats {
    let mut total = ResourceStats::default();
    for r in resources {
        let s = r.stats();
        total.grants += s.grants;
        total.busy_cycles += s.busy_cycles;
        total.wait_cycles += s.wait_cycles;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BusConfig, HopLatency};

    #[test]
    fn uncontended_grants_are_immediate() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(10, 4), 10);
        assert_eq!(r.next_free(), 14);
        assert_eq!(r.stats().wait_cycles, 0);
    }

    #[test]
    fn back_to_back_requests_queue_fifo() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(0, 4), 0);
        assert_eq!(r.acquire(0, 4), 4);
        assert_eq!(r.acquire(1, 4), 8);
        let s = r.stats();
        assert_eq!(s.grants, 3);
        assert_eq!(s.busy_cycles, 12);
        assert_eq!(s.wait_cycles, 4 + 7);
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut r = Resource::new();
        r.acquire(0, 2);
        assert_eq!(r.acquire(100, 2), 100);
        assert_eq!(r.stats().wait_cycles, 0);
    }

    #[test]
    fn mean_wait() {
        let mut r = Resource::new();
        assert_eq!(r.stats().mean_wait(), 0.0);
        r.acquire(0, 10);
        r.acquire(0, 10);
        assert_eq!(r.stats().mean_wait(), 5.0);
    }

    fn bus() -> BusConfig {
        BusConfig {
            cmd_cycles: 1,
            data_cycles: 2,
        }
    }

    #[test]
    fn one_cluster_zero_hop_matches_a_flat_bus() {
        // The degenerate topology must reproduce the flat single-bus
        // arithmetic exactly: arrival = grant + cmd_cycles, one acquire.
        let mut net = Interconnect::new(1, HopLatency::flat(), bus());
        let mut flat = Resource::new();
        for (t, broadcast) in [
            (0u64, false),
            (0, true),
            (5, false),
            (5, true),
            (100, false),
        ] {
            let expect = flat.acquire(t, 1) + 1;
            let got = if broadcast {
                net.broadcast_cmd(0, t)
            } else {
                net.cmd(0, 0, t)
            };
            assert_eq!(got, expect);
        }
        assert_eq!(net.addr_stats(), flat.stats());
        let (ga, gd) = net.global_stats();
        assert_eq!(ga.grants, 0, "global segment untouched on 1 cluster");
        assert_eq!(gd.grants, 0);
    }

    #[test]
    fn cross_cluster_pays_hops_and_all_three_segments() {
        let hop = HopLatency {
            intra_tile: 1,
            intra_cluster: 2,
            cross_cluster: 8,
        };
        let mut net = Interconnect::new(4, hop, bus());
        // local: tile(1) + grant + cmd(1) + cluster(2)
        assert_eq!(net.cmd(0, 0, 0), 1 + 1 + 2);
        // remote: local leg, +8 to global, global grant + 1 + 8, remote
        // bus grant + 1 + 2
        let t = net.cmd(1, 2, 0);
        assert_eq!(t, (1 + 1 + 2) + 8 + 1 + 8 + 1 + 2);
        let (ga, _) = net.global_stats();
        assert_eq!(ga.grants, 1);
        assert!(net.addr_stats().grants >= 3);
    }

    #[test]
    fn broadcast_reaches_all_clusters_via_one_global_grant() {
        let hop = HopLatency {
            intra_tile: 0,
            intra_cluster: 0,
            cross_cluster: 4,
        };
        let mut net = Interconnect::new(2, hop, bus());
        let done = net.broadcast_cmd(0, 0);
        // local grant+1, +4 up, global grant+1, +4 down
        assert_eq!(done, 1 + 4 + 1 + 4);
        let (ga, _) = net.global_stats();
        assert_eq!(ga.grants, 1);
    }

    #[test]
    fn data_transfers_queue_per_segment() {
        let mut net = Interconnect::new(2, HopLatency::flat(), bus());
        assert_eq!(net.data(0, 0, 0), 2);
        assert_eq!(net.data(0, 0, 0), 4, "same cluster bus queues FIFO");
        // cross-cluster: origin bus (grant 4, done 6) then global (done 8)
        // then destination bus (done 10)
        assert_eq!(net.data(0, 1, 0), 10);
        // cluster 1's bus was occupied [8, 10) by the incoming transfer,
        // so its next local transfer queues behind it.
        assert_eq!(net.data(1, 1, 0), 12);
    }
}
