//! Shared-bus and bank-port arbitration.
//!
//! Every shared resource in the machine (the core↔L2 bus, each L2 bank's tag
//! port, each bank's hook/filter port, the L3 port) is modeled as a
//! [`Resource`]: a FIFO next-free-cycle arbiter. A request arriving at cycle
//! `t` is granted at `max(t, next_free)` and occupies the resource for its
//! duration. Because the engine processes events in global time order,
//! grant order tracks arrival order, and queueing delay — the quantity whose
//! growth saturates Figure 4 beyond 16 cores — emerges naturally.

/// Occupancy-based FIFO arbiter for one shared resource.
#[derive(Debug, Default)]
pub struct Resource {
    next_free: u64,
    stats: ResourceStats,
}

/// Utilization counters for a [`Resource`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResourceStats {
    /// Number of grants.
    pub grants: u64,
    /// Total cycles of occupancy granted.
    pub busy_cycles: u64,
    /// Total cycles requests spent waiting for the grant.
    pub wait_cycles: u64,
}

impl ResourceStats {
    /// Mean queueing delay per grant.
    pub fn mean_wait(&self) -> f64 {
        if self.grants == 0 {
            0.0
        } else {
            self.wait_cycles as f64 / self.grants as f64
        }
    }
}

impl Resource {
    /// A resource that is free at cycle zero.
    pub fn new() -> Resource {
        Resource::default()
    }

    /// Request the resource at cycle `now` for `cycles` cycles of occupancy.
    /// Returns the grant cycle; the resource is busy until
    /// `grant + cycles`.
    pub fn acquire(&mut self, now: u64, cycles: u64) -> u64 {
        let grant = now.max(self.next_free);
        self.next_free = grant + cycles;
        self.stats.grants += 1;
        self.stats.busy_cycles += cycles;
        self.stats.wait_cycles += grant - now;
        grant
    }

    /// Cycle at which the resource next becomes free.
    pub fn next_free(&self) -> u64 {
        self.next_free
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ResourceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_grants_are_immediate() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(10, 4), 10);
        assert_eq!(r.next_free(), 14);
        assert_eq!(r.stats().wait_cycles, 0);
    }

    #[test]
    fn back_to_back_requests_queue_fifo() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(0, 4), 0);
        assert_eq!(r.acquire(0, 4), 4);
        assert_eq!(r.acquire(1, 4), 8);
        let s = r.stats();
        assert_eq!(s.grants, 3);
        assert_eq!(s.busy_cycles, 12);
        assert_eq!(s.wait_cycles, 4 + 7);
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut r = Resource::new();
        r.acquire(0, 2);
        assert_eq!(r.acquire(100, 2), 100);
        assert_eq!(r.stats().wait_cycles, 0);
    }

    #[test]
    fn mean_wait() {
        let mut r = Resource::new();
        assert_eq!(r.stats().mean_wait(), 0.0);
        r.acquire(0, 10);
        r.acquire(0, 10);
        assert_eq!(r.stats().mean_wait(), 5.0);
    }
}
