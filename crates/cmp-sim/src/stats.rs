//! Whole-machine statistics snapshots.

use crate::bus::ResourceStats;
use crate::cache::CacheStats;
use crate::coherence::DirectoryStats;
use crate::core::CoreStats;
use crate::hwnet::HwNetStats;
use crate::trace::EpisodeStats;

/// Result of a completed simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Simulation clock at the end of the run: the cycle the last core
    /// halted, or [`Machine::now()`](crate::Machine::now) if later.
    /// Monotone with the clock — trailing events and quiescent-advance
    /// pauses that push `now` past the last halt (fault-driven runs do
    /// this) are carried forward, never rolled back; the regression tests
    /// in `bench/tests/chaos.rs` hold this line.
    pub cycles: u64,
    /// Total instructions retired across all cores.
    pub instructions: u64,
}

impl RunSummary {
    /// Aggregate instructions-per-cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The simulated-outcome record shared by every measurement layer in the
/// workspace: kernel harness outcomes, barrier-latency points and
/// throughput samples all embed one `Measurement`, so "what the simulation
/// did" has a single shape everywhere.
///
/// The digest is the determinism fingerprint
/// ([`MachineStats::digest`]); `episodes` carries the per-barrier-episode
/// decomposition including the §3.3.3 recovery counters (cancellations,
/// re-parks, resumes after release).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Measurement {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total simulated instructions retired.
    pub instructions: u64,
    /// [`MachineStats::digest`] fingerprint of the run.
    pub stats_digest: u64,
    /// Per-barrier-episode metrics of the run.
    pub episodes: EpisodeStats,
}

impl Measurement {
    /// Snapshot a finished run: the summary's totals plus the stats digest
    /// and episode decomposition.
    pub fn new(summary: &RunSummary, stats: &MachineStats) -> Measurement {
        Measurement {
            cycles: summary.cycles,
            instructions: summary.instructions,
            stats_digest: stats.digest(),
            episodes: stats.episodes,
        }
    }

    /// Aggregate instructions-per-cycle of the run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Point-in-time snapshot of every counter in the machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineStats {
    /// Current simulation cycle.
    pub cycles: u64,
    /// Per-core retirement counters.
    pub cores: Vec<CoreStats>,
    /// Per-core L1 data cache counters.
    pub l1d: Vec<CacheStats>,
    /// Per-core L1 instruction cache counters.
    pub l1i: Vec<CacheStats>,
    /// Per-bank L2 counters.
    pub l2: Vec<CacheStats>,
    /// L3 counters.
    pub l3: CacheStats,
    /// Address/command network utilization.
    pub addr_bus: ResourceStats,
    /// Data network utilization.
    pub data_bus: ResourceStats,
    /// Per-bank hook-port utilization.
    pub hook_ports: Vec<ResourceStats>,
    /// Coherence directory counters.
    pub directory: DirectoryStats,
    /// Dedicated barrier network counters.
    pub hw_network: HwNetStats,
    /// Per-barrier-episode metrics (always collected). Deliberately *not*
    /// part of [`MachineStats::digest`], so the observability layer can
    /// grow without invalidating historical digests.
    pub episodes: EpisodeStats,
}

impl MachineStats {
    /// Total instructions retired across cores.
    pub fn instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Order-sensitive FNV-1a fingerprint over every counter in the
    /// snapshot. Two runs of the same machine must produce equal digests —
    /// this is the determinism contract the engine's event ordering
    /// guarantees, and what the throughput benchmark checks across
    /// simulator optimizations (an optimization must not change *any*
    /// simulated behaviour, only host time).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.cycles);
        for c in &self.cores {
            h.u64(c.instructions);
            h.u64(c.loads);
            h.u64(c.stores);
            h.u64(c.invalidates);
            h.u64(c.fills_parked);
            h.u64(c.halt_cycle.map_or(u64::MAX, |v| v));
            h.u64(c.mshr_peak as u64);
        }
        for group in [&self.l1d, &self.l1i, &self.l2] {
            for c in group.iter() {
                h.cache(c);
            }
        }
        h.cache(&self.l3);
        for r in [&self.addr_bus, &self.data_bus]
            .into_iter()
            .chain(self.hook_ports.iter())
        {
            h.u64(r.grants);
            h.u64(r.busy_cycles);
            h.u64(r.wait_cycles);
        }
        h.u64(self.directory.upgrade_invalidations);
        h.u64(self.directory.copies_invalidated);
        h.u64(self.directory.dirty_transfers);
        h.u64(self.hw_network.arrivals);
        h.u64(self.hw_network.episodes);
        // NOTE: `self.episodes` and `CoreStats::fills_released` are
        // intentionally excluded — the digest fingerprints simulated
        // behaviour established before the observability layer existed,
        // and adding fields would break every recorded digest.
        h.0
    }

    /// Total L1D misses across cores.
    pub fn l1d_misses(&self) -> u64 {
        self.l1d.iter().map(|c| c.misses).sum()
    }

    /// Total fills parked at bank hooks (barrier filter starvations).
    pub fn fills_parked(&self) -> u64 {
        self.cores.iter().map(|c| c.fills_parked).sum()
    }
}

/// 64-bit FNV-1a accumulator for [`MachineStats::digest`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn cache(&mut self, c: &CacheStats) {
        self.u64(c.hits);
        self.u64(c.misses);
        self.u64(c.evictions);
        self.u64(c.dirty_evictions);
        self.u64(c.invalidations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        let s = RunSummary {
            cycles: 0,
            instructions: 0,
        };
        assert_eq!(s.ipc(), 0.0);
        let s = RunSummary {
            cycles: 100,
            instructions: 50,
        };
        assert_eq!(s.ipc(), 0.5);
    }
}
