//! Timing-only set-associative cache model with true-LRU replacement.
//!
//! Caches track tags and coherence state, never data (data lives in
//! [`Memory`](crate::mem::Memory)), which is sufficient for a timing model
//! and keeps the functional result of a simulation independent of
//! replacement noise.

use crate::config::CacheConfig;

/// Coherence/validity state of a cached line.
///
/// L1 instruction caches and the shared L2/L3 only use `Shared`; L1 data
/// caches use the full MSI set, with the directory (in
/// `coherence`) as the authority on who owns what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Clean, potentially replicated.
    Shared,
    /// Exclusive and dirty.
    Modified,
}

/// Sentinel for an unoccupied way. Real line addresses are line-aligned and
/// far below `u64::MAX`, so the sentinel can never match a lookup.
const EMPTY_LINE: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Way {
    line: u64,
    state: LineState,
    /// Higher = more recently used. Ticks are unique across the cache, so
    /// the LRU victim in a set is always unambiguous.
    lru: u64,
}

const EMPTY_WAY: Way = Way {
    line: EMPTY_LINE,
    state: LineState::Shared,
    lru: 0,
};

/// Hit/miss/eviction counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the line.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines displaced by fills.
    pub evictions: u64,
    /// Dirty lines displaced by fills (require writeback).
    pub dirty_evictions: u64,
    /// Lines removed by explicit invalidation (`icbi`/`dcbi`/coherence).
    pub invalidations: u64,
}

impl CacheStats {
    /// Total lookups performed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; zero when no accesses occurred.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative, true-LRU, timing-only cache.
///
/// Storage is one flat way arena with a fixed per-set stride (no per-set
/// `Vec`), so a lookup touches a single contiguous slab — this sits on the
/// simulator's per-memory-op hot path. Within a set, way order carries no
/// meaning: lines are unique per set and LRU ticks are unique per cache, so
/// hit, victim, and eviction decisions are identical to any other layout.
#[derive(Debug)]
pub struct Cache {
    /// `sets * ways` entries; set `s` occupies `s*ways .. (s+1)*ways`.
    slots: Vec<Way>,
    ways: usize,
    set_mask: u64,
    latency: u64,
    tick: u64,
    /// Placement generation: bumped whenever a line can appear, move, or
    /// disappear (`insert`, `invalidate`) — NOT on `lookup`/`set_state`,
    /// which leave every line in its slot. The fused-memory executor's
    /// per-core line memo ([`crate::decode`]) caches `(line, slot, gen)`
    /// and stays valid exactly while the generation matches.
    generation: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets() as usize;
        let ways = config.ways as usize;
        Cache {
            slots: vec![EMPTY_WAY; sets * ways],
            ways,
            set_mask: sets as u64 - 1,
            latency: config.latency,
            tick: 0,
            generation: 0,
            stats: CacheStats::default(),
        }
    }

    /// Current placement generation (see the field docs).
    #[inline]
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    fn set_of(&self, line: u64) -> usize {
        // `line` is a line-aligned byte address; the set index comes from
        // the line number, not the raw address.
        ((line / sim_isa::LINE_BYTES) & self.set_mask) as usize
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let start = self.set_of(line) * self.ways;
        start..start + self.ways
    }

    /// Look up `line` (a line-aligned byte address). On a hit the LRU
    /// position is refreshed and the state returned.
    #[inline]
    pub fn lookup(&mut self, line: u64) -> Option<LineState> {
        self.lookup_slot(line)
            .map(|slot| self.slots[slot as usize].state)
    }

    /// [`lookup`](Cache::lookup), additionally returning the hit slot's
    /// arena index so the fused-memory executor can memoize it. Performs
    /// *exactly* the same simulated mutations (tick, LRU refresh, hit/miss
    /// counters) — `lookup` delegates here, so the two cannot drift.
    #[inline]
    pub(crate) fn lookup_slot(&mut self, line: u64) -> Option<u32> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let start = range.start;
        match self.slots[range]
            .iter_mut()
            .enumerate()
            .find(|(_, w)| w.line == line)
        {
            Some((i, w)) => {
                w.lru = tick;
                self.stats.hits += 1;
                Some((start + i) as u32)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Refresh an already-validated hit at `slot` — the fused-memory
    /// executor's line-memo fast path. Mutates exactly what the hit arm of
    /// [`lookup_slot`](Cache::lookup_slot) would (tick, that way's LRU,
    /// the hit counter) without the set walk. Callers must hold a memo
    /// validated against [`generation`](Cache::generation); the debug
    /// assert pins the contract.
    #[inline]
    pub(crate) fn touch(&mut self, slot: u32, line: u64) {
        debug_assert_eq!(
            self.slots[slot as usize].line, line,
            "stale fused-memory line memo"
        );
        self.tick += 1;
        self.slots[slot as usize].lru = self.tick;
        self.stats.hits += 1;
    }

    /// Check for presence without disturbing LRU or counting stats.
    pub fn probe(&self, line: u64) -> Option<LineState> {
        let range = self.set_range(line);
        self.slots[range]
            .iter()
            .find(|w| w.line == line)
            .map(|w| w.state)
    }

    /// Insert (fill) `line` in `state`, returning the evicted victim, if
    /// any, as `(line, state)`.
    pub fn insert(&mut self, line: u64, state: LineState) -> Option<(u64, LineState)> {
        self.generation += 1;
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let set = &mut self.slots[range];
        if let Some(w) = set.iter_mut().find(|w| w.line == line) {
            // Fill of an already-present line just refreshes it.
            w.state = state;
            w.lru = tick;
            return None;
        }
        if let Some(w) = set.iter_mut().find(|w| w.line == EMPTY_LINE) {
            *w = Way {
                line,
                state,
                lru: tick,
            };
            return None;
        }
        // Every way occupied: evict the (unique) least recently used one.
        let victim_way = set
            .iter_mut()
            .min_by_key(|w| w.lru)
            .expect("nonzero associativity");
        let victim = *victim_way;
        *victim_way = Way {
            line,
            state,
            lru: tick,
        };
        self.stats.evictions += 1;
        if victim.state == LineState::Modified {
            self.stats.dirty_evictions += 1;
        }
        Some((victim.line, victim.state))
    }

    /// Remove `line` if present, returning its state.
    pub fn invalidate(&mut self, line: u64) -> Option<LineState> {
        self.generation += 1;
        let range = self.set_range(line);
        let w = self.slots[range].iter_mut().find(|w| w.line == line)?;
        let state = w.state;
        *w = EMPTY_WAY;
        self.stats.invalidations += 1;
        Some(state)
    }

    /// Change the state of a resident line (e.g. S→M on upgrade, M→S on a
    /// remote read). No-op if the line is absent.
    pub fn set_state(&mut self, line: u64, state: LineState) {
        let range = self.set_range(line);
        if let Some(w) = self.slots[range].iter_mut().find(|w| w.line == line) {
            w.state = state;
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident lines (diagnostics).
    pub fn resident(&self) -> usize {
        self.slots.iter().filter(|w| w.line != EMPTY_LINE).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines, 2 ways => 2 sets
        Cache::new(CacheConfig {
            size_bytes: 4 * 64,
            ways: 2,
            latency: 1,
        })
    }

    /// Line-aligned byte address of line number `i`.
    fn ln(i: u64) -> u64 {
        i * 64
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup(ln(0)), None);
        assert_eq!(c.insert(ln(0), LineState::Shared), None);
        assert_eq!(c.lookup(ln(0)), Some(LineState::Shared));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // lines 0, 2, 4 all map to set 0 (2 sets => even lines to set 0)
        c.insert(ln(0), LineState::Shared);
        c.insert(ln(2), LineState::Shared);
        c.lookup(ln(0)); // make line 2 the LRU
        let victim = c.insert(ln(4), LineState::Shared);
        assert_eq!(victim, Some((ln(2), LineState::Shared)));
        assert!(c.probe(ln(0)).is_some());
        assert!(c.probe(ln(4)).is_some());
        assert!(c.probe(ln(2)).is_none());
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.insert(ln(0), LineState::Modified);
        c.insert(ln(2), LineState::Shared);
        let victim = c.insert(ln(4), LineState::Shared);
        assert_eq!(victim, Some((ln(0), LineState::Modified)));
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.insert(ln(1), LineState::Shared);
        assert_eq!(c.invalidate(ln(1)), Some(LineState::Shared));
        assert_eq!(c.invalidate(ln(1)), None);
        assert_eq!(c.lookup(ln(1)), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn set_state_transitions() {
        let mut c = tiny();
        c.insert(ln(3), LineState::Shared);
        c.set_state(ln(3), LineState::Modified);
        assert_eq!(c.probe(ln(3)), Some(LineState::Modified));
        // absent line: no-op
        c.set_state(ln(5), LineState::Modified);
        assert_eq!(c.probe(ln(5)), None);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = tiny();
        c.insert(ln(0), LineState::Shared);
        c.insert(ln(2), LineState::Shared);
        assert_eq!(c.insert(ln(0), LineState::Modified), None);
        assert_eq!(c.probe(ln(0)), Some(LineState::Modified));
        assert_eq!(c.resident(), 2);
    }

    #[test]
    fn probe_does_not_touch_stats_or_lru() {
        let mut c = tiny();
        c.insert(ln(0), LineState::Shared);
        c.insert(ln(2), LineState::Shared);
        let before = c.stats();
        c.probe(ln(0));
        assert_eq!(c.stats(), before);
        // line 0 is still LRU (insert order), so probing it must not save it
        let victim = c.insert(ln(4), LineState::Shared);
        assert_eq!(victim.map(|(l, _)| l), Some(ln(0)));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.insert(ln(0), LineState::Shared); // set 0
        c.insert(ln(1), LineState::Shared); // set 1
        c.insert(ln(2), LineState::Shared); // set 0
        c.insert(ln(3), LineState::Shared); // set 1
        assert_eq!(c.resident(), 4);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn consecutive_line_addresses_fill_distinct_sets() {
        // regression: the set index must come from the line number, so a
        // contiguous array larger than one set's worth of ways does not
        // thrash two ways forever
        let mut c = Cache::new(CacheConfig {
            size_bytes: 64 * 64, // 64 lines, 2-way, 32 sets
            ways: 2,
            latency: 1,
        });
        for i in 0..64u64 {
            c.insert(ln(i), LineState::Shared);
        }
        assert_eq!(c.resident(), 64, "all 64 lines must be resident");
        assert_eq!(c.stats().evictions, 0);
    }
}
