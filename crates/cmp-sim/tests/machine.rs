//! End-to-end tests of the machine: functional correctness of the VM,
//! timing sanity of the memory hierarchy, synchronization primitives, the
//! bank-hook parking machinery, and error detection.

use cmp_sim::{
    AddressSpace, BankHook, FillDecision, HookOutcome, HookViolation, MachineBuilder, ParkToken,
    RunState, SimConfig, SimError, TraceConfig, TraceEvent,
};
use sim_isa::{line_of, Asm, FReg, Program, Reg};

fn build(config: SimConfig, program: Program, threads: usize) -> (cmp_sim::Machine, u64) {
    let entry = program.require_symbol("entry").unwrap();
    let mut b = MachineBuilder::new(config, program).unwrap();
    for _ in 0..threads {
        b.add_thread(entry);
    }
    (b.build().unwrap(), entry)
}

#[test]
fn arithmetic_loop_computes_correctly() {
    // sum of 1..=100 via a loop
    let mut a = Asm::new();
    let cfg = SimConfig::with_cores(1);
    let mut space = AddressSpace::new(&cfg);
    let out = space.alloc_u64(1).unwrap();
    a.label("entry").unwrap();
    a.li(Reg::T0, 100).li(Reg::T1, 0);
    a.label("loop").unwrap();
    a.add(Reg::T1, Reg::T1, Reg::T0);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bne(Reg::T0, Reg::ZERO, "loop");
    a.li(Reg::T2, out as i64);
    a.std(Reg::T1, Reg::T2, 0);
    a.halt();
    let (mut m, _) = build(cfg, a.assemble().unwrap(), 1);
    let summary = m.run().unwrap();
    assert_eq!(m.read_u64(out), 5050);
    assert!(summary.instructions > 300);
    assert!(
        summary.cycles > summary.instructions,
        "loop has taken branches"
    );
}

#[test]
fn fp_kernel_matches_host() {
    // out = a*b + c with fmadd
    let cfg = SimConfig::with_cores(1);
    let mut space = AddressSpace::new(&cfg);
    let data = space.alloc_f64(3).unwrap();
    let out = space.alloc_f64(1).unwrap();
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, data as i64);
    a.fld(FReg::F1, Reg::T0, 0);
    a.fld(FReg::F2, Reg::T0, 8);
    a.fld(FReg::F3, Reg::T0, 16);
    a.fmadd(FReg::F0, FReg::F1, FReg::F2, FReg::F3);
    a.li(Reg::T1, out as i64);
    a.fst(FReg::F0, Reg::T1, 0);
    a.halt();
    let program = a.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut b = MachineBuilder::new(cfg, program).unwrap();
    b.write_f64_slice(data, &[1.5, -2.0, 0.25]);
    b.add_thread(entry);
    let mut m = b.build().unwrap();
    m.run().unwrap();
    assert_eq!(m.read_f64(out), 1.5f64.mul_add(-2.0, 0.25));
}

#[test]
fn cold_miss_pays_full_memory_latency_and_second_access_hits() {
    let cfg = SimConfig::with_cores(1);
    let mut space = AddressSpace::new(&cfg);
    let data = space.alloc_u64(1).unwrap();
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, data as i64);
    a.ldd(Reg::T1, Reg::T0, 0); // cold: L2+L3+mem
    a.ldd(Reg::T2, Reg::T0, 0); // hot: L1 hit
    a.halt();
    let (mut m, _) = build(cfg, a.assemble().unwrap(), 1);
    let summary = m.run().unwrap();
    // the cold load alone costs at least L2+L3+memory latency
    let floor = 14 + 38 + 138;
    assert!(
        summary.cycles > floor,
        "cycles {} should exceed {floor}",
        summary.cycles
    );
    let stats = m.stats();
    assert_eq!(stats.l1d[0].misses, 1);
    assert_eq!(stats.l1d[0].hits, 1);
    // one data miss plus one instruction-fetch miss reach memory
    assert_eq!(stats.l3.misses, 2);
}

#[test]
fn l2_hit_is_much_faster_than_memory() {
    // Two cores read the same line; the second core's miss hits in L2.
    let cfg = SimConfig::with_cores(2);
    let mut space = AddressSpace::new(&cfg);
    let data = space.alloc_u64(1).unwrap();
    let mut a = Asm::new();
    a.label("entry").unwrap();
    // thread 1 spins a while so thread 0's fill completes first
    a.beq(Reg::TID, Reg::ZERO, "load");
    a.li(Reg::T3, 200);
    a.label("delay").unwrap();
    a.addi(Reg::T3, Reg::T3, -1);
    a.bne(Reg::T3, Reg::ZERO, "delay");
    a.label("load").unwrap();
    a.li(Reg::T0, data as i64);
    a.ldd(Reg::T1, Reg::T0, 0);
    a.halt();
    let (mut m, _) = build(cfg, a.assemble().unwrap(), 2);
    m.run().unwrap();
    let stats = m.stats();
    // core 0's data miss and the shared code line go to memory once each;
    // core 1's code fetch and data load are both satisfied by the L2
    assert_eq!(stats.l3.misses, 2);
    assert_eq!(stats.l2.iter().map(|c| c.hits).sum::<u64>(), 2);
}

#[test]
fn stores_are_visible_to_other_cores() {
    // Core 0 stores 7 to a flag line, then spins on an ack; core 1 spins on
    // the flag, then stores the ack.
    let cfg = SimConfig::with_cores(2);
    let mut space = AddressSpace::new(&cfg);
    let flag = space.alloc_u64(1).unwrap();
    let ack = space.alloc_u64(1).unwrap();
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, flag as i64);
    a.li(Reg::T1, ack as i64);
    a.li(Reg::T2, 7);
    a.bne(Reg::TID, Reg::ZERO, "consumer");
    a.std(Reg::T2, Reg::T0, 0);
    a.label("wait_ack").unwrap();
    a.ldd(Reg::T3, Reg::T1, 0);
    a.beq(Reg::T3, Reg::ZERO, "wait_ack");
    a.halt();
    a.label("consumer").unwrap();
    a.label("wait_flag").unwrap();
    a.ldd(Reg::T3, Reg::T0, 0);
    a.beq(Reg::T3, Reg::ZERO, "wait_flag");
    a.std(Reg::T2, Reg::T1, 0);
    a.halt();
    let (mut m, _) = build(cfg, a.assemble().unwrap(), 2);
    m.run().unwrap();
    assert_eq!(m.read_u64(flag), 7);
    assert_eq!(m.read_u64(ack), 7);
}

#[test]
fn ll_sc_fetch_and_add_is_atomic_across_16_cores() {
    let cfg = SimConfig::with_cores(16);
    let mut space = AddressSpace::new(&cfg);
    let counter = space.alloc_u64(1).unwrap();
    // each of 16 threads increments the counter 10 times with ll/sc
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, counter as i64);
    a.li(Reg::T1, 10);
    a.label("again").unwrap();
    a.ll(Reg::T2, Reg::T0, 0);
    a.addi(Reg::T2, Reg::T2, 1);
    a.sc(Reg::T3, Reg::T2, Reg::T0, 0);
    a.beq(Reg::T3, Reg::ZERO, "again"); // sc failed: retry
    a.addi(Reg::T1, Reg::T1, -1);
    a.bne(Reg::T1, Reg::ZERO, "again");
    a.halt();
    let (mut m, _) = build(cfg, a.assemble().unwrap(), 16);
    m.run().unwrap();
    assert_eq!(m.read_u64(counter), 160);
}

#[test]
fn sc_without_reservation_fails() {
    let cfg = SimConfig::with_cores(1);
    let mut space = AddressSpace::new(&cfg);
    let data = space.alloc_u64(1).unwrap();
    let out = space.alloc_u64(1).unwrap();
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, data as i64);
    a.li(Reg::T2, 99);
    a.sc(Reg::T3, Reg::T2, Reg::T0, 0); // no ll first
    a.li(Reg::T1, out as i64);
    a.std(Reg::T3, Reg::T1, 0);
    a.halt();
    let (mut m, _) = build(cfg, a.assemble().unwrap(), 1);
    m.run().unwrap();
    assert_eq!(m.read_u64(out), 0, "sc must fail");
    assert_eq!(m.read_u64(data), 0, "failed sc must not write");
}

#[test]
fn remote_store_breaks_reservation() {
    // Core 0: ll, wait for signal, sc (must fail, because core 1 stored to
    // the line in between).
    let cfg = SimConfig::with_cores(2);
    let mut space = AddressSpace::new(&cfg);
    let target = space.alloc_u64(1).unwrap();
    let signal = space.alloc_u64(1).unwrap();
    let out = space.alloc_u64(1).unwrap();
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, target as i64);
    a.li(Reg::T1, signal as i64);
    a.bne(Reg::TID, Reg::ZERO, "intruder");
    a.ll(Reg::T2, Reg::T0, 0);
    a.li(Reg::T4, 1);
    a.std(Reg::T4, Reg::T1, 8); // tell intruder we have the reservation
    a.label("wait").unwrap();
    a.ldd(Reg::T3, Reg::T1, 0);
    a.beq(Reg::T3, Reg::ZERO, "wait");
    a.li(Reg::T2, 42);
    a.sc(Reg::T3, Reg::T2, Reg::T0, 0);
    a.li(Reg::T5, out as i64);
    a.std(Reg::T3, Reg::T5, 0);
    a.halt();
    a.label("intruder").unwrap();
    a.label("wait2").unwrap();
    a.ldd(Reg::T3, Reg::T1, 8);
    a.beq(Reg::T3, Reg::ZERO, "wait2");
    a.li(Reg::T2, 7);
    a.std(Reg::T2, Reg::T0, 0); // clobber the reserved line
    a.li(Reg::T4, 1);
    a.std(Reg::T4, Reg::T1, 0);
    a.halt();
    let (mut m, _) = build(cfg, a.assemble().unwrap(), 2);
    m.run().unwrap();
    assert_eq!(m.read_u64(out), 0, "sc must observe the broken reservation");
    assert_eq!(m.read_u64(target), 7, "intruder's store survives");
}

#[test]
fn fence_waits_for_store_buffer() {
    let cfg = SimConfig::with_cores(1);
    let mut space = AddressSpace::new(&cfg);
    let data = space.alloc_u64(8).unwrap();
    // back-to-back stores to distinct lines, then sync
    let mut with_fence = Asm::new();
    with_fence.label("entry").unwrap();
    with_fence.li(Reg::T0, data as i64);
    for i in 0..4 {
        with_fence.std(Reg::T0, Reg::T0, i * 64);
    }
    with_fence.sync();
    with_fence.halt();
    let (mut m_fence, _) = build(cfg.clone(), with_fence.assemble().unwrap(), 1);
    let cy_fence = m_fence.run().unwrap().cycles;

    let mut no_fence = Asm::new();
    no_fence.label("entry").unwrap();
    no_fence.li(Reg::T0, data as i64);
    for i in 0..4 {
        no_fence.std(Reg::T0, Reg::T0, i * 64);
    }
    no_fence.halt();
    let (mut m_plain, _) = build(cfg, no_fence.assemble().unwrap(), 1);
    let cy_plain = m_plain.run().unwrap().cycles;
    // Draining four write-allocate misses through the fence costs far more
    // than retiring the stores into the buffer.
    assert!(
        cy_fence > cy_plain + 100,
        "fence {cy_fence} vs plain {cy_plain}"
    );
}

#[test]
fn icbi_invalidates_instruction_cache_everywhere() {
    let cfg = SimConfig::with_cores(1);
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, 2);
    a.label("loop").unwrap();
    // invalidate the line containing "loop" itself, then isync, then loop
    a.li(Reg::T1, 0); // will be patched to hold the loop pc
    a.icbi(Reg::T1, 0);
    a.isync();
    a.addi(Reg::T0, Reg::T0, -1);
    a.bne(Reg::T0, Reg::ZERO, "loop");
    a.halt();
    let program = a.assemble().unwrap();
    let loop_pc = program.require_symbol("loop").unwrap();
    // Rebuild with the correct immediate (simpler than label math in asm).
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, 2);
    a.label("loop").unwrap();
    a.li(Reg::T1, loop_pc as i64);
    a.icbi(Reg::T1, 0);
    a.isync();
    a.addi(Reg::T0, Reg::T0, -1);
    a.bne(Reg::T0, Reg::ZERO, "loop");
    a.halt();
    let mut cfg_t = cfg;
    cfg_t.trace = TraceConfig::ring();
    let (mut m, _) = build(cfg_t, a.assemble().unwrap(), 1);
    m.run().unwrap();
    let stats = m.stats();
    // first fetch misses; after each icbi the loop line must miss again
    assert!(
        stats.l1i[0].misses >= 3,
        "icbi must force refetch, misses = {}",
        stats.l1i[0].misses
    );
    assert!(m
        .trace_snapshot()
        .iter()
        .any(|(_, e)| matches!(e, TraceEvent::Invalidate { icache: true, .. })));
}

#[test]
fn spinning_on_a_cached_flag_generates_no_bus_traffic() {
    let mut cfg = SimConfig::with_cores(1);
    cfg.trace = TraceConfig::ring();
    let mut space = AddressSpace::new(&cfg);
    let flag = space.alloc_u64(1).unwrap();
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, flag as i64);
    a.li(Reg::T1, 100);
    a.label("spin").unwrap();
    a.ldd(Reg::T2, Reg::T0, 0);
    a.addi(Reg::T1, Reg::T1, -1);
    a.bne(Reg::T1, Reg::ZERO, "spin");
    a.halt();
    let (mut m, _) = build(cfg, a.assemble().unwrap(), 1);
    m.run().unwrap();
    let stats = m.stats();
    assert_eq!(stats.l1d[0].misses, 1, "only the first spin load misses");
    assert_eq!(stats.l1d[0].hits, 99);
}

#[test]
fn hwbar_synchronizes_and_is_fast() {
    let cfg = SimConfig::with_cores(4);
    let mut space = AddressSpace::new(&cfg);
    let out = space.alloc_u64(4).unwrap();
    // All threads hwbar, then thread 0 checks nothing: we simply measure
    // that the barrier completes and every thread halts.
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, 16);
    a.label("loop").unwrap();
    a.hwbar(0);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bne(Reg::T0, Reg::ZERO, "loop");
    a.li(Reg::T1, out as i64);
    a.slli(Reg::T2, Reg::TID, 3);
    a.add(Reg::T1, Reg::T1, Reg::T2);
    a.li(Reg::T3, 1);
    a.std(Reg::T3, Reg::T1, 0);
    a.halt();
    let program = a.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut b = MachineBuilder::new(cfg, program).unwrap();
    for _ in 0..4 {
        b.add_thread(entry);
    }
    b.configure_hw_barrier(0, vec![0, 1, 2, 3]);
    let mut m = b.build().unwrap();
    m.run().unwrap();
    assert_eq!(m.read_u64_slice(out, 4), vec![1, 1, 1, 1]);
    assert_eq!(m.stats().hw_network.episodes, 16);
}

#[test]
fn hwbar_without_group_is_an_error() {
    let cfg = SimConfig::with_cores(1);
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.hwbar(3);
    a.halt();
    let (mut m, _) = build(cfg, a.assemble().unwrap(), 1);
    assert!(matches!(
        m.run(),
        Err(SimError::UnknownHwBarrier { core: 0, id: 3 })
    ));
}

#[test]
fn one_sided_hwbar_deadlocks_with_report() {
    let mut cfg = SimConfig::with_cores(2);
    cfg.cycle_limit = 1_000_000;
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.bne(Reg::TID, Reg::ZERO, "skip");
    a.hwbar(0);
    a.label("skip").unwrap();
    a.halt();
    let program = a.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut b = MachineBuilder::new(cfg, program).unwrap();
    b.add_thread(entry);
    b.add_thread(entry);
    b.configure_hw_barrier(0, vec![0, 1]);
    let mut m = b.build().unwrap();
    match m.run() {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert_eq!(blocked.len(), 1);
            assert_eq!(blocked[0].0, 0);
            assert!(blocked[0].1.contains("barrier network"));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn unaligned_access_faults() {
    let cfg = SimConfig::with_cores(1);
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, 0x1000_0001);
    a.ldd(Reg::T1, Reg::T0, 0);
    a.halt();
    let (mut m, _) = build(cfg, a.assemble().unwrap(), 1);
    assert!(matches!(
        m.run(),
        Err(SimError::UnalignedAccess { width: 8, .. })
    ));
}

#[test]
fn store_to_code_region_faults() {
    let cfg = SimConfig::with_cores(1);
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, sim_isa::CODE_BASE as i64);
    a.std(Reg::T0, Reg::T0, 0);
    a.halt();
    let (mut m, _) = build(cfg, a.assemble().unwrap(), 1);
    assert!(matches!(m.run(), Err(SimError::CodeRegionWrite { .. })));
}

#[test]
fn division_by_zero_faults() {
    let cfg = SimConfig::with_cores(1);
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, 4);
    a.div(Reg::T1, Reg::T0, Reg::ZERO);
    a.halt();
    let (mut m, _) = build(cfg, a.assemble().unwrap(), 1);
    assert!(matches!(m.run(), Err(SimError::DivisionByZero { .. })));
}

#[test]
fn cycle_limit_guard_fires() {
    let mut cfg = SimConfig::with_cores(1);
    cfg.cycle_limit = 500;
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.label("forever").unwrap();
    a.j("forever");
    let (mut m, _) = build(cfg, a.assemble().unwrap(), 1);
    assert!(matches!(
        m.run(),
        Err(SimError::CycleLimitExceeded { limit: 500 })
    ));
}

#[test]
fn determinism_same_machine_same_cycles() {
    let mk = || {
        let cfg = SimConfig::with_cores(8);
        let mut space = AddressSpace::new(&cfg);
        let counter = space.alloc_u64(1).unwrap();
        let mut a = Asm::new();
        a.label("entry").unwrap();
        a.li(Reg::T0, counter as i64);
        a.li(Reg::T1, 20);
        a.label("again").unwrap();
        a.ll(Reg::T2, Reg::T0, 0);
        a.addi(Reg::T2, Reg::T2, 1);
        a.sc(Reg::T3, Reg::T2, Reg::T0, 0);
        a.beq(Reg::T3, Reg::ZERO, "again");
        a.addi(Reg::T1, Reg::T1, -1);
        a.bne(Reg::T1, Reg::ZERO, "again");
        a.halt();
        let (mut m, _) = build(cfg, a.assemble().unwrap(), 8);
        (m.run().unwrap(), m.read_u64(counter))
    };
    let (s1, v1) = mk();
    let (s2, v2) = mk();
    assert_eq!(s1, s2);
    assert_eq!(v1, 160);
    assert_eq!(v2, 160);
}

// ---------------------------------------------------------------------
// Bank-hook machinery (mock hook; the real filter lives in barrier-filter)
// ---------------------------------------------------------------------

/// Parks the first `park_n` fills for a watched line; releases them all when
/// an invalidation for the release line arrives.
struct MockHook {
    watched: u64,
    release_on: u64,
    parked: Vec<ParkToken>,
    park_n: usize,
    /// Once the release invalidate has been seen, later fills are serviced
    /// (like a filter whose threads are in the Servicing state).
    open: bool,
}

impl BankHook for MockHook {
    fn on_invalidate(
        &mut self,
        line: u64,
        _now: u64,
        out: &mut HookOutcome,
    ) -> Result<(), HookViolation> {
        if line == self.release_on {
            out.released.append(&mut self.parked);
            self.open = true;
        }
        Ok(())
    }

    fn on_fill_request(
        &mut self,
        line: u64,
        token: ParkToken,
        _now: u64,
        _out: &mut HookOutcome,
    ) -> Result<FillDecision, HookViolation> {
        if line == self.watched && !self.open && self.parked.len() < self.park_n {
            self.parked.push(token);
            return Ok(FillDecision::Park);
        }
        if line == self.watched {
            return Ok(FillDecision::Service);
        }
        Ok(FillDecision::NotMine)
    }

    fn on_cancel(&mut self, token: ParkToken) {
        self.parked.retain(|&t| t != token);
    }
}

#[test]
fn parked_fill_starves_until_release_invalidate() {
    let mut cfg = SimConfig::with_cores(2);
    cfg.trace = TraceConfig::ring();
    let mut space = AddressSpace::new(&cfg);
    let watched = space.alloc_bank_lines(0, 1).unwrap();
    let release = space.alloc_bank_lines(0, 1).unwrap();
    let out = space.alloc_u64(1).unwrap();
    assert_eq!(line_of(watched), watched);

    // Thread 0 loads the watched line (gets parked). Thread 1 delays, then
    // dcbi's the release line, which frees thread 0.
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.bne(Reg::TID, Reg::ZERO, "releaser");
    a.li(Reg::T0, watched as i64);
    a.ldd(Reg::T1, Reg::T0, 0); // parked here
    a.li(Reg::T2, out as i64);
    a.li(Reg::T3, 1);
    a.std(Reg::T3, Reg::T2, 0);
    a.halt();
    a.label("releaser").unwrap();
    a.li(Reg::T3, 400);
    a.label("delay").unwrap();
    a.addi(Reg::T3, Reg::T3, -1);
    a.bne(Reg::T3, Reg::ZERO, "delay");
    a.li(Reg::T0, release as i64);
    a.dcbi(Reg::T0, 0);
    a.halt();
    let program = a.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut b = MachineBuilder::new(cfg, program).unwrap();
    b.add_thread(entry);
    b.add_thread(entry);
    b.install_hook(
        0,
        Box::new(MockHook {
            watched,
            release_on: release,
            parked: Vec::new(),
            park_n: 1,
            open: false,
        }),
    )
    .unwrap();
    let mut m = b.build().unwrap();
    let summary = m.run().unwrap();
    assert_eq!(m.read_u64(out), 1, "thread 0 completed after release");
    // thread 0 was starved for roughly the releaser's delay loop
    // (400 iterations at >= 1 cycle each)
    assert!(summary.cycles > 400, "cycles = {}", summary.cycles);
    assert!(m
        .trace_snapshot()
        .iter()
        .any(|(_, e)| matches!(e, TraceEvent::Parked { core: 0, .. })));
    assert!(m
        .trace_snapshot()
        .iter()
        .any(|(_, e)| matches!(e, TraceEvent::Released { core: 0, .. })));
    assert_eq!(m.stats().fills_parked(), 1);
}

#[test]
fn parked_fill_with_no_release_deadlocks() {
    let mut cfg = SimConfig::with_cores(1);
    cfg.cycle_limit = 1_000_000;
    let mut space = AddressSpace::new(&cfg);
    let watched = space.alloc_bank_lines(0, 1).unwrap();
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, watched as i64);
    a.ldd(Reg::T1, Reg::T0, 0);
    a.halt();
    let program = a.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut b = MachineBuilder::new(cfg, program).unwrap();
    b.add_thread(entry);
    b.install_hook(
        0,
        Box::new(MockHook {
            watched,
            release_on: 0,
            parked: Vec::new(),
            park_n: 1,
            open: false,
        }),
    )
    .unwrap();
    let mut m = b.build().unwrap();
    match m.run() {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert!(blocked[0].1.contains("parked"));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn context_switch_out_and_resume_reissues_fill() {
    let mut cfg = SimConfig::with_cores(2);
    cfg.cycle_limit = 1_000_000;
    let mut space = AddressSpace::new(&cfg);
    let watched = space.alloc_bank_lines(0, 1).unwrap();
    let release = space.alloc_bank_lines(0, 1).unwrap();
    let out = space.alloc_u64(1).unwrap();
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.bne(Reg::TID, Reg::ZERO, "releaser");
    a.li(Reg::T0, watched as i64);
    a.ldd(Reg::T1, Reg::T0, 0);
    a.li(Reg::T2, out as i64);
    a.li(Reg::T3, 1);
    a.std(Reg::T3, Reg::T2, 0);
    a.halt();
    a.label("releaser").unwrap();
    a.li(Reg::T3, 2000);
    a.label("delay").unwrap();
    a.addi(Reg::T3, Reg::T3, -1);
    a.bne(Reg::T3, Reg::ZERO, "delay");
    a.li(Reg::T0, release as i64);
    a.dcbi(Reg::T0, 0);
    a.halt();
    let program = a.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut b = MachineBuilder::new(cfg, program).unwrap();
    b.add_thread(entry);
    b.add_thread(entry);
    b.install_hook(
        0,
        Box::new(MockHook {
            watched,
            release_on: release,
            parked: Vec::new(),
            park_n: 2, // park the re-issued fill as well until release
            open: false,
        }),
    )
    .unwrap();
    let mut m = b.build().unwrap();
    // Run until thread 0 is parked, then model an OS context switch.
    assert_eq!(m.run_until(1000).unwrap(), RunState::Paused);
    assert!(m.context_switch_out(0), "thread 0 should be parked by now");
    assert!(!m.context_switch_out(0), "double switch-out is refused");
    // Re-schedule it; the barrier is still closed, so it parks again.
    m.resume_thread(0).unwrap();
    let summary = m.run();
    summary.unwrap();
    assert_eq!(m.read_u64(out), 1);
}

#[test]
fn resume_after_release_is_serviced_immediately() {
    let mut cfg = SimConfig::with_cores(2);
    cfg.cycle_limit = 1_000_000;
    let mut space = AddressSpace::new(&cfg);
    let watched = space.alloc_bank_lines(0, 1).unwrap();
    let release = space.alloc_bank_lines(0, 1).unwrap();
    let out = space.alloc_u64(1).unwrap();
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.bne(Reg::TID, Reg::ZERO, "releaser");
    a.li(Reg::T0, watched as i64);
    a.ldd(Reg::T1, Reg::T0, 0);
    a.li(Reg::T2, out as i64);
    a.li(Reg::T3, 1);
    a.std(Reg::T3, Reg::T2, 0);
    a.halt();
    a.label("releaser").unwrap();
    a.li(Reg::T3, 500);
    a.label("delay").unwrap();
    a.addi(Reg::T3, Reg::T3, -1);
    a.bne(Reg::T3, Reg::ZERO, "delay");
    a.li(Reg::T0, release as i64);
    a.dcbi(Reg::T0, 0);
    a.halt();
    let program = a.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut b = MachineBuilder::new(cfg, program).unwrap();
    b.add_thread(entry);
    b.add_thread(entry);
    b.install_hook(
        0,
        Box::new(MockHook {
            watched,
            release_on: release,
            parked: Vec::new(),
            park_n: 1,
            open: false,
        }),
    )
    .unwrap();
    let mut m = b.build().unwrap();
    // Park thread 0, switch it out, and let the release happen while it is
    // switched out. The mock then services the re-issued fill (park_n=1 and
    // nothing is parked, so the "barrier" is open).
    assert_eq!(m.run_until(400).unwrap(), RunState::Paused);
    assert!(m.context_switch_out(0));
    // The releaser finishes and the machine goes quiescent with thread 0
    // still switched out: that is Paused (waiting on the OS), not deadlock.
    match m.run_until(100_000).unwrap() {
        RunState::Paused => {}
        RunState::Finished(_) => panic!("thread 0 cannot finish while switched out"),
    }
    m.resume_thread(0).unwrap();
    m.run().unwrap();
    assert_eq!(m.read_u64(out), 1);
}

/// Build the self-modifying-code fixture: three passes over a patchable
/// payload instruction, each storing the payload's value into the next
/// `out` slot. When `with_icbi` is set, every pass ends with
/// `icbi payload; isync` — the architectural point where staged
/// [`patch_code`](cmp_sim::Machine::patch_code) patches become fetchable.
/// Returns the machine, the `out` base address, and the payload pc.
fn build_smc_machine(with_icbi: bool, decode_cache: bool) -> (cmp_sim::Machine, u64, u64) {
    let mut cfg = SimConfig::with_cores(1);
    cfg.decode_cache = decode_cache;
    let mut space = AddressSpace::new(&cfg);
    let out = space.alloc_u64(3).unwrap();
    let emit = |payload_pc: i64| {
        let mut a = Asm::new();
        a.label("entry").unwrap();
        a.li(Reg::S0, 3);
        a.li(Reg::T0, out as i64);
        a.label("payload").unwrap();
        a.li(Reg::T1, 111); // patched to li t1, 222
        a.std(Reg::T1, Reg::T0, 0);
        a.addi(Reg::T0, Reg::T0, 8);
        if with_icbi {
            a.li(Reg::T2, payload_pc);
            a.icbi(Reg::T2, 0);
            a.isync();
        }
        a.addi(Reg::S0, Reg::S0, -1);
        a.bne(Reg::S0, Reg::ZERO, "payload");
        a.halt();
        a
    };
    // Two-pass assembly: learn the payload pc, then re-emit with the
    // correct icbi target immediate.
    let payload_pc = emit(0)
        .assemble()
        .unwrap()
        .require_symbol("payload")
        .unwrap();
    let (m, _) = build(cfg, emit(payload_pc as i64).assemble().unwrap(), 1);
    (m, out, payload_pc)
}

/// The self-modifying-code contract: a patch staged with `patch_code`
/// lands exactly at the first `icbi` broadcast covering its line. The
/// first pass still executes the original payload (staging is invisible
/// to fetch), every later pass executes the patched one — and the whole
/// run is bit-identical with the decoded-superblock cache on or off,
/// because the icbi both applies the patch and drops the line's decoded
/// blocks. The decode counters pin non-vacuousness from both sides: the
/// enabled cache must rebuild after exactly one patch invalidation and
/// serve the *patched* block from cache on the third pass, while the
/// disabled cache stays silent.
#[test]
fn staged_code_patch_lands_at_icbi_broadcast() {
    let mut reference = None;
    for decode_cache in [false, true] {
        let (mut m, out, payload_pc) = build_smc_machine(true, decode_cache);
        m.patch_code(payload_pc, sim_isa::Instr::Li(Reg::T1, 222))
            .unwrap();
        let summary = m.run().unwrap();
        assert_eq!(
            m.read_u64_slice(out, 3),
            vec![111, 222, 222],
            "decode_cache={decode_cache}: patch must land at the first icbi"
        );
        let d = m.decode_stats();
        if decode_cache {
            assert_eq!(d.invalidations, 1, "exactly one pass lands a patch");
            assert!(d.builds > 0, "payload line must be re-decoded");
            assert!(d.hits > 0, "third pass reuses the patched block");
        } else {
            assert_eq!(d, Default::default(), "disabled cache stays silent");
        }
        match &reference {
            None => reference = Some((summary, m.stats().clone())),
            Some((ref_sum, ref_stats)) => {
                assert_eq!(&summary, ref_sum, "RunSummary diverged across decode_cache");
                assert_eq!(&m.stats(), ref_stats, "MachineStats diverged");
                assert_eq!(m.stats().digest(), ref_stats.digest());
            }
        }
    }
}

/// Without the `icbi`, a staged patch never becomes fetchable: every pass
/// architecturally sees the old payload word, exactly like the stale
/// window a real weakly-ordered ISA permits between a code store and the
/// `icbi`/`isync` sequence. The point of the test is that this staleness
/// is *deterministic* — same result on every run, with the decode cache
/// on or off — rather than dependent on which host execution strategy
/// happened to have the line decoded.
#[test]
fn missing_icbi_keeps_stale_code_deterministic() {
    let mut reference = None;
    for decode_cache in [false, true] {
        for run in 0..2 {
            let (mut m, out, payload_pc) = build_smc_machine(false, decode_cache);
            m.patch_code(payload_pc, sim_isa::Instr::Li(Reg::T1, 222))
                .unwrap();
            let summary = m.run().unwrap();
            assert_eq!(
                m.read_u64_slice(out, 3),
                vec![111, 111, 111],
                "decode_cache={decode_cache} run={run}: no icbi, no patch"
            );
            let d = m.decode_stats();
            if decode_cache {
                assert_eq!(d.invalidations, 0, "the staged patch never lands");
                assert!(d.hits > 0, "later passes reuse the stale block");
            } else {
                assert_eq!(d, Default::default());
            }
            match &reference {
                None => reference = Some((summary, m.stats().clone())),
                Some((ref_sum, ref_stats)) => {
                    assert_eq!(&summary, ref_sum, "stale window must be deterministic");
                    assert_eq!(&m.stats(), ref_stats);
                }
            }
        }
    }
}
