//! The Figure 4 barrier micro-benchmark as a kernel: `inner` consecutive
//! barriers with no work between them, repeated `outer` times (the
//! methodology of §4.2, following Culler/Singh/Gupta).
//!
//! This used to live in the bench crate as the `build_latency_machine_*`
//! variant family; as a [`WorkloadSpec`](crate::WorkloadSpec) workload it
//! is addressable by the same [`RunSpec`](crate::RunSpec) value as every
//! other kernel, so latency points, throughput samples and serve jobs
//! all share one description. The build sequence is kept exactly as the
//! legacy builder emitted it (threads added before the barrier system
//! installs, observer sink attached after) — the committed Figure 4
//! digest is pinned against this path.

use cmp_sim::{Machine, MachineBuilder};
use sim_isa::Reg;

use crate::harness::KernelBuild;
use crate::spec::{ExecSpec, RunAttachments, RunOutput};
use crate::KernelError;

/// The micro-benchmark shape: `inner` consecutive barriers, `outer`
/// repetitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig4 {
    inner: u64,
    outer: u64,
}

impl Fig4 {
    /// `inner`×`outer` barrier episodes (the paper uses 64 × 64).
    pub fn new(inner: u64, outer: u64) -> Fig4 {
        Fig4 { inner, outer }
    }

    /// Total barrier episodes per run.
    pub fn episodes(&self) -> u64 {
        self.inner * self.outer
    }

    /// Build (but do not run) the micro-benchmark machine for `exec`.
    /// Split out from [`run_with`](Fig4::run_with) so the wall-clock
    /// throughput benchmark can time only the `run()` call.
    ///
    /// # Errors
    ///
    /// Spec/barrier/assembly/build failures; [`KernelError::Spec`] if the
    /// mechanism would fall back (a latency sweep of the fallback barrier
    /// would mislabel the measurement).
    pub fn build(
        &self,
        exec: &ExecSpec,
        att: &mut RunAttachments<'_>,
    ) -> Result<Machine, KernelError> {
        if exec.mechanism.is_none() {
            return Err(KernelError::Spec(
                "fig4 measures a barrier; it has no sequential form".into(),
            ));
        }
        let (mut b, barrier) = KernelBuild::from_exec(exec, att)?;
        let barrier = barrier.expect("mechanism checked above");
        if barrier.is_fallback() {
            return Err(KernelError::Spec(
                "fig4 must not measure a fallback barrier".into(),
            ));
        }
        let asm = &mut b.asm;
        asm.label("entry")?;
        asm.li(Reg::S0, self.outer as i64);
        asm.label("outer")?;
        asm.li(Reg::S1, self.inner as i64);
        asm.label("inner")?;
        barrier.emit_call(asm);
        asm.addi(Reg::S1, Reg::S1, -1);
        asm.bne(Reg::S1, Reg::ZERO, "inner");
        asm.addi(Reg::S0, Reg::S0, -1);
        asm.bne(Reg::S0, Reg::ZERO, "outer");
        asm.halt();
        let program = b.asm.assemble()?;
        let entry = program.require_symbol("entry")?;
        let mut cfg = b.config;
        cfg.trace = b.trace;
        cfg.cycle_limit = cfg.cycle_limit.max(2_000_000_000);
        let mut mb = MachineBuilder::new(cfg, program)?;
        for _ in 0..b.threads {
            mb.add_thread(entry);
        }
        if let Some(sys) = b.sys {
            sys.install(&mut mb)?;
        }
        if let Some(sink) = b.sink {
            mb.with_trace_sink(sink);
        }
        Ok(mb.build()?)
    }

    /// Build and run under `exec`, with per-repetition cost reported per
    /// barrier episode ([`cycles_per_rep`](crate::KernelOutcome) =
    /// cycles/barrier).
    ///
    /// # Errors
    ///
    /// Build or simulation failures.
    pub fn run_with(
        &self,
        exec: &ExecSpec,
        mut att: RunAttachments<'_>,
    ) -> Result<RunOutput, KernelError> {
        let mut m = self.build(exec, &mut att)?;
        let (outcome, faults) = crate::spec::run_spec_reps(&mut m, self.episodes(), exec, &att)?;
        Ok(RunOutput {
            outcome,
            faults,
            program: m.program().clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunSpec;
    use barrier_filter::BarrierMechanism;

    #[test]
    fn cycles_per_rep_is_cycles_per_barrier() {
        let spec = RunSpec::fig4(BarrierMechanism::FilterD, 4, 8, 2);
        let out = crate::run(&spec).unwrap();
        let per_barrier = out.outcome.sim.cycles as f64 / 16.0;
        assert!((out.outcome.cycles_per_rep - per_barrier).abs() < 1e-9);
        assert!(out.outcome.cycles_per_rep > 0.0);
    }

    #[test]
    fn sequential_fig4_is_rejected() {
        let err = Fig4::new(8, 2)
            .run_with(&ExecSpec::sequential(), RunAttachments::default())
            .unwrap_err();
        assert!(matches!(err, KernelError::Spec(_)));
    }
}
