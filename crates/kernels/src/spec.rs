//! `RunSpec`: one serializable description of a kernel run.
//!
//! Historically every orthogonal run option (engine knobs, fault plans,
//! trace sinks, race-detector observers, clustered topologies) grew its
//! own `run_parallel_*` / `build_latency_machine_*` function variant, so
//! a run configuration could not be described as *data* — which blocked
//! putting the sweep grid behind a wire protocol or a result cache. This
//! module collapses the variant zoo into a single value:
//!
//! * [`WorkloadSpec`] — which kernel, at what size (the paper's eight
//!   workloads plus the Figure 4 barrier micro-benchmark);
//! * [`ExecSpec`] — threads, barrier mechanism, topology preset,
//!   [`EngineKnobs`], and an optional seeded [`FaultSpec`];
//! * [`RunSpec`] — the pair, with a canonical single-line JSON form
//!   ([`RunSpec::canonical_json`]) whose FNV-1a hash
//!   ([`RunSpec::digest`]) keys the `fastbar-serve` result cache.
//!
//! A wire job, a cache key and an in-process call are now the same
//! value: [`run`] consumes a spec, [`run_with`] additionally takes the
//! non-serializable [`RunAttachments`] (trace sinks, observer hooks,
//! hand-built fault plans) that only make sense in-process.
//!
//! Everything in [`ExecSpec`] beyond threads/mechanism/topology is a
//! host-side concern: knobs, faults-with-empty-plans, traces and
//! observers must leave the run's [`Measurement`](cmp_sim::Measurement)
//! digest bit-identical. The determinism suite pins the committed Figure
//! 4 and Viterbi digests through this path.

use std::fmt::Write as _;
use std::str::FromStr;

use barrier_filter::{Barrier, BarrierMechanism, BarrierSystem};
use cmp_sim::{
    fnv64, json_escape, AddressSpace, FaultPlan, FaultReport, Json, SimConfig, TraceConfig,
    TraceSink,
};
use sim_isa::{Asm, Program};

use crate::fig4::Fig4;
use crate::harness::{EngineKnobs, KernelBuild, KernelOutcome};
use crate::livermore::{Loop1, Loop2, Loop3, Loop4, Loop5, Loop6};
use crate::{Autocorr, KernelError, OceanProxy, Viterbi};

/// Which kernel to run, at what size. Serializable; sizes are validated
/// by [`RunSpec::validate`] before any kernel constructor (which would
/// panic on bad sizes) is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// The Figure 4 micro-benchmark: `inner` consecutive barriers with no
    /// work between them, repeated `outer` times.
    Fig4 {
        /// Consecutive barriers per outer repetition.
        inner: u64,
        /// Outer repetitions.
        outer: u64,
    },
    /// Livermore Loop 1 (hydro fragment) over `n` elements.
    Loop1 {
        /// Element count.
        n: usize,
    },
    /// Livermore Loop 2 (ICCG) over `n` elements (power of two, ≥ 4).
    Loop2 {
        /// Element count.
        n: usize,
    },
    /// Livermore Loop 3 (inner product) over `n` elements.
    Loop3 {
        /// Element count.
        n: usize,
    },
    /// Livermore Loop 4 (banded linear equations) over `n` elements (≥ 9).
    Loop4 {
        /// Element count.
        n: usize,
    },
    /// Livermore Loop 5 (tri-diagonal elimination) over `n` elements —
    /// a true recurrence, sequential-only.
    Loop5 {
        /// Element count.
        n: usize,
    },
    /// Livermore Loop 6 (general linear recurrence) over `n` elements (≥ 2).
    Loop6 {
        /// Element count.
        n: usize,
    },
    /// EEMBC-like autocorrelation over `n` samples with `lags` lags.
    Autocorr {
        /// Sample count.
        n: usize,
        /// Lag count (0 < lags ≤ n).
        lags: usize,
    },
    /// EEMBC-like Viterbi decode: constraint length 5 or 7, `data_bits`
    /// payload bits, `noise_per_mille` soft-symbol perturbation rate.
    Viterbi {
        /// Constraint length (5 or 7).
        constraint: u32,
        /// Payload bits to decode.
        data_bits: usize,
        /// Per-mille rate of perturbed soft symbols.
        noise_per_mille: u32,
    },
    /// The SPLASH-2-inspired red-black Gauss-Seidel proxy on a
    /// `grid`×`grid` field for `sweeps` sweeps.
    Ocean {
        /// Grid edge length (≥ 4).
        grid: usize,
        /// Red-black sweeps.
        sweeps: usize,
    },
}

impl WorkloadSpec {
    /// Stable wire name of this workload kind.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadSpec::Fig4 { .. } => "fig4",
            WorkloadSpec::Loop1 { .. } => "loop1",
            WorkloadSpec::Loop2 { .. } => "loop2",
            WorkloadSpec::Loop3 { .. } => "loop3",
            WorkloadSpec::Loop4 { .. } => "loop4",
            WorkloadSpec::Loop5 { .. } => "loop5",
            WorkloadSpec::Loop6 { .. } => "loop6",
            WorkloadSpec::Autocorr { .. } => "autocorr",
            WorkloadSpec::Viterbi { .. } => "viterbi",
            WorkloadSpec::Ocean { .. } => "ocean",
        }
    }

    /// Whether this workload can run under a barrier mechanism at all
    /// (Loop 5 is a true recurrence and cannot).
    pub fn is_parallelizable(&self) -> bool {
        !matches!(self, WorkloadSpec::Loop5 { .. })
    }

    fn check(&self) -> Result<(), KernelError> {
        let bad = |why: String| Err(KernelError::Spec(why));
        match *self {
            WorkloadSpec::Fig4 { inner, outer } => {
                if inner == 0 || outer == 0 {
                    return bad(format!("fig4 needs inner/outer >= 1, got {inner}x{outer}"));
                }
            }
            WorkloadSpec::Loop1 { n } | WorkloadSpec::Loop3 { n } => {
                if n == 0 {
                    return bad(format!("{} needs n >= 1", self.kind()));
                }
            }
            WorkloadSpec::Loop2 { n } => {
                if !n.is_power_of_two() || n < 4 {
                    return bad(format!("loop2 needs a power-of-two n >= 4, got {n}"));
                }
            }
            WorkloadSpec::Loop4 { n } => {
                if n < 9 {
                    return bad(format!("loop4 needs n >= 9, got {n}"));
                }
            }
            WorkloadSpec::Loop5 { n } | WorkloadSpec::Loop6 { n } => {
                if n < 2 {
                    return bad(format!("{} needs n >= 2, got {n}", self.kind()));
                }
            }
            WorkloadSpec::Autocorr { n, lags } => {
                if lags == 0 || lags > n {
                    return bad(format!(
                        "autocorr needs 0 < lags <= n, got n={n} lags={lags}"
                    ));
                }
            }
            WorkloadSpec::Viterbi {
                constraint,
                data_bits,
                noise_per_mille,
            } => {
                if constraint != 5 && constraint != 7 {
                    return bad(format!(
                        "viterbi constraint must be 5 or 7, got {constraint}"
                    ));
                }
                if data_bits == 0 {
                    return bad("viterbi needs data_bits >= 1".into());
                }
                if noise_per_mille > 1000 {
                    return bad(format!(
                        "viterbi noise_per_mille must be <= 1000, got {noise_per_mille}"
                    ));
                }
            }
            WorkloadSpec::Ocean { grid, sweeps } => {
                if grid < 4 {
                    return bad(format!("ocean needs grid >= 4, got {grid}"));
                }
                if sweeps == 0 {
                    return bad("ocean needs sweeps >= 1".into());
                }
            }
        }
        Ok(())
    }

    fn json_into(&self, out: &mut String) {
        out.push_str("{\"kind\":\"");
        out.push_str(self.kind());
        out.push('"');
        match *self {
            WorkloadSpec::Fig4 { inner, outer } => {
                let _ = write!(out, ",\"inner\":{inner},\"outer\":{outer}");
            }
            WorkloadSpec::Loop1 { n }
            | WorkloadSpec::Loop2 { n }
            | WorkloadSpec::Loop3 { n }
            | WorkloadSpec::Loop4 { n }
            | WorkloadSpec::Loop5 { n }
            | WorkloadSpec::Loop6 { n } => {
                let _ = write!(out, ",\"n\":{n}");
            }
            WorkloadSpec::Autocorr { n, lags } => {
                let _ = write!(out, ",\"n\":{n},\"lags\":{lags}");
            }
            WorkloadSpec::Viterbi {
                constraint,
                data_bits,
                noise_per_mille,
            } => {
                let _ = write!(
                    out,
                    ",\"constraint\":{constraint},\"data_bits\":{data_bits},\
                     \"noise_per_mille\":{noise_per_mille}"
                );
            }
            WorkloadSpec::Ocean { grid, sweeps } => {
                let _ = write!(out, ",\"grid\":{grid},\"sweeps\":{sweeps}");
            }
        }
        out.push('}');
    }

    fn from_json(j: &Json) -> Result<WorkloadSpec, KernelError> {
        let kind = j
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| KernelError::Spec("workload.kind missing".into()))?;
        let field = |name: &str| -> Result<usize, KernelError> {
            j.get(name)
                .and_then(Json::as_usize)
                .ok_or_else(|| KernelError::Spec(format!("workload.{name} missing for {kind}")))
        };
        Ok(match kind {
            "fig4" => WorkloadSpec::Fig4 {
                inner: field("inner")? as u64,
                outer: field("outer")? as u64,
            },
            "loop1" => WorkloadSpec::Loop1 { n: field("n")? },
            "loop2" => WorkloadSpec::Loop2 { n: field("n")? },
            "loop3" => WorkloadSpec::Loop3 { n: field("n")? },
            "loop4" => WorkloadSpec::Loop4 { n: field("n")? },
            "loop5" => WorkloadSpec::Loop5 { n: field("n")? },
            "loop6" => WorkloadSpec::Loop6 { n: field("n")? },
            "autocorr" => WorkloadSpec::Autocorr {
                n: field("n")?,
                lags: field("lags")?,
            },
            "viterbi" => WorkloadSpec::Viterbi {
                constraint: field("constraint")? as u32,
                data_bits: field("data_bits")?,
                noise_per_mille: field("noise_per_mille")? as u32,
            },
            "ocean" => WorkloadSpec::Ocean {
                grid: field("grid")?,
                sweeps: field("sweeps")?,
            },
            other => {
                return Err(KernelError::Spec(format!(
                    "unknown workload kind `{other}`"
                )))
            }
        })
    }
}

/// A seeded fault plan, expressed as data: expands to
/// [`FaultPlan::generate`]`(seed, count, horizon)` at run time. Carrying
/// the horizon explicitly (instead of deriving it from a baseline run)
/// keeps the spec self-contained, so the same wire value always produces
/// the same plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Generator seed.
    pub seed: u64,
    /// Number of fault events to schedule.
    pub count: usize,
    /// Cycle horizon the events are spread over.
    pub horizon: u64,
}

/// How to execute a workload: parallelism, machine shape, engine knobs,
/// faults. Everything here is serializable; see [`RunAttachments`] for
/// the in-process-only extras.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecSpec {
    /// Thread count (= core count; one thread per core). Must be 1 when
    /// `mechanism` is `None`.
    pub threads: usize,
    /// Barrier mechanism, or `None` for the sequential baseline.
    pub mechanism: Option<BarrierMechanism>,
    /// Topology preset: 1 = the paper's flat Table-2 bus
    /// ([`SimConfig::with_cores`]), k > 1 = `k` clusters
    /// ([`SimConfig::clustered`]).
    pub clusters: usize,
    /// Engine fast-path knob overrides (digest-invariant).
    pub knobs: EngineKnobs,
    /// Optional seeded fault plan (§3.3.3 graceful degradation).
    pub faults: Option<FaultSpec>,
}

impl ExecSpec {
    /// The sequential baseline: one thread, no barrier, flat machine.
    pub fn sequential() -> ExecSpec {
        ExecSpec {
            threads: 1,
            mechanism: None,
            clusters: 1,
            knobs: EngineKnobs::default(),
            faults: None,
        }
    }

    /// `threads` threads under `mechanism` on the flat Table-2 machine.
    pub fn parallel(threads: usize, mechanism: BarrierMechanism) -> ExecSpec {
        ExecSpec {
            threads,
            mechanism: Some(mechanism),
            clusters: 1,
            knobs: EngineKnobs::default(),
            faults: None,
        }
    }

    /// The [`SimConfig`] this spec's topology preset selects (before
    /// knob overrides, which the build path applies at the same point
    /// the legacy variants did).
    pub fn config(&self) -> SimConfig {
        SimConfig::clustered(self.threads, self.clusters)
    }

    /// The fault plan this spec describes (the empty plan when `faults`
    /// is `None` — bit-identical to an unfaulted run).
    pub fn fault_plan(&self) -> FaultPlan {
        match self.faults {
            Some(FaultSpec {
                seed,
                count,
                horizon,
            }) => FaultPlan::generate(seed, count, horizon),
            None => FaultPlan::none(),
        }
    }

    fn check(&self) -> Result<(), KernelError> {
        if self.threads == 0 {
            return Err(KernelError::Spec("threads must be >= 1".into()));
        }
        if self.threads > cmp_sim::MAX_CORES {
            return Err(KernelError::Spec(format!(
                "threads {} exceeds MAX_CORES {}",
                self.threads,
                cmp_sim::MAX_CORES
            )));
        }
        if self.mechanism.is_none() && self.threads != 1 {
            return Err(KernelError::Spec(format!(
                "sequential specs run one thread, got {}",
                self.threads
            )));
        }
        if self.clusters == 0 {
            return Err(KernelError::Spec("clusters must be >= 1".into()));
        }
        if self.clusters > 1 {
            let cpc = self.threads / self.clusters;
            if cpc == 0 || cpc * self.clusters != self.threads || !cpc.is_power_of_two() {
                return Err(KernelError::Spec(format!(
                    "clusters {} must evenly split threads {} into power-of-two slices",
                    self.clusters, self.threads
                )));
            }
        }
        Ok(())
    }
}

/// One serializable description of a kernel run: workload + execution.
/// The same value serves as the wire job, the cache key and the
/// in-process call — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Which kernel, at what size.
    pub workload: WorkloadSpec,
    /// How to execute it.
    pub exec: ExecSpec,
}

/// Wire schema tag of the canonical spec encoding.
pub const SPEC_SCHEMA: &str = "fastbar-spec/v1";

impl RunSpec {
    /// `workload` under `mechanism` across `threads` threads on the flat
    /// machine, default knobs, no faults.
    pub fn parallel(
        workload: WorkloadSpec,
        threads: usize,
        mechanism: BarrierMechanism,
    ) -> RunSpec {
        RunSpec {
            workload,
            exec: ExecSpec::parallel(threads, mechanism),
        }
    }

    /// The sequential baseline of `workload`.
    pub fn sequential(workload: WorkloadSpec) -> RunSpec {
        RunSpec {
            workload,
            exec: ExecSpec::sequential(),
        }
    }

    /// The Figure 4 micro-benchmark: `inner`×`outer` barriers of
    /// `mechanism` across `cores` cores (the paper uses 64 × 64 at 16).
    pub fn fig4(mechanism: BarrierMechanism, cores: usize, inner: u64, outer: u64) -> RunSpec {
        RunSpec::parallel(WorkloadSpec::Fig4 { inner, outer }, cores, mechanism)
    }

    /// This spec on a `clusters`-cluster machine (builder style).
    #[must_use]
    pub fn clustered(mut self, clusters: usize) -> RunSpec {
        self.exec.clusters = clusters;
        self
    }

    /// This spec with engine knob overrides (builder style).
    #[must_use]
    pub fn with_knobs(mut self, knobs: EngineKnobs) -> RunSpec {
        self.exec.knobs = knobs;
        self
    }

    /// This spec driven through a seeded fault plan (builder style).
    #[must_use]
    pub fn with_faults(mut self, seed: u64, count: usize, horizon: u64) -> RunSpec {
        self.exec.faults = Some(FaultSpec {
            seed,
            count,
            horizon,
        });
        self
    }

    /// Validate without running: workload sizes, thread/topology shape,
    /// and that a sequential-only workload is not asked to parallelize.
    ///
    /// # Errors
    ///
    /// [`KernelError::Spec`] describing the first problem found.
    pub fn validate(&self) -> Result<(), KernelError> {
        self.workload.check()?;
        self.exec.check()?;
        if self.exec.mechanism.is_some() && !self.workload.is_parallelizable() {
            return Err(KernelError::Spec(format!(
                "{} is a true recurrence and cannot run in parallel",
                self.workload.kind()
            )));
        }
        if self.exec.mechanism.is_none() && matches!(self.workload, WorkloadSpec::Fig4 { .. }) {
            return Err(KernelError::Spec(
                "fig4 measures a barrier; it has no sequential form".into(),
            ));
        }
        Ok(())
    }

    /// The canonical single-line JSON encoding: fixed field order, every
    /// field explicit (`null` for unset options), `u64` values as `0x`
    /// hex strings where full width matters. Two equal specs always
    /// produce identical bytes, so [`RunSpec::digest`] is a content
    /// address.
    pub fn canonical_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"schema\":\"{SPEC_SCHEMA}\",\"workload\":");
        self.workload.json_into(&mut out);
        let _ = write!(out, ",\"threads\":{}", self.exec.threads);
        match self.exec.mechanism {
            Some(m) => {
                let _ = write!(out, ",\"mechanism\":\"{}\"", json_escape(m.name()));
            }
            None => out.push_str(",\"mechanism\":null"),
        }
        let _ = write!(out, ",\"clusters\":{}", self.exec.clusters);
        out.push_str(",\"knobs\":{");
        match self.exec.knobs.burst_budget {
            Some(b) => {
                let _ = write!(out, "\"burst_budget\":{b}");
            }
            None => out.push_str("\"burst_budget\":null"),
        }
        for (name, v) in [
            ("decode_cache", self.exec.knobs.decode_cache),
            ("event_shards", self.exec.knobs.event_shards),
            ("fused_memory", self.exec.knobs.fused_memory),
        ] {
            match v {
                Some(b) => {
                    let _ = write!(out, ",\"{name}\":{b}");
                }
                None => {
                    let _ = write!(out, ",\"{name}\":null");
                }
            }
        }
        out.push('}');
        match self.exec.faults {
            Some(f) => {
                let _ = write!(
                    out,
                    ",\"faults\":{{\"seed\":\"{:#018x}\",\"count\":{},\"horizon\":{}}}",
                    f.seed, f.count, f.horizon
                );
            }
            None => out.push_str(",\"faults\":null"),
        }
        out.push('}');
        out
    }

    /// The spec's content address: the 64-bit FNV-1a hash of
    /// [`canonical_json`](RunSpec::canonical_json). This is the
    /// `fastbar-serve` cache key; determinism makes it a complete one.
    pub fn digest(&self) -> u64 {
        fnv64(self.canonical_json().as_bytes())
    }

    /// Decode a spec from parsed JSON (tolerant: field order and unknown
    /// fields don't matter; missing optional fields default).
    ///
    /// # Errors
    ///
    /// [`KernelError::Spec`] on missing/malformed fields.
    pub fn from_json(j: &Json) -> Result<RunSpec, KernelError> {
        if let Some(schema) = j.get("schema").and_then(Json::as_str) {
            if schema != SPEC_SCHEMA {
                return Err(KernelError::Spec(format!("unknown spec schema `{schema}`")));
            }
        }
        let workload = WorkloadSpec::from_json(
            j.get("workload")
                .ok_or_else(|| KernelError::Spec("workload missing".into()))?,
        )?;
        let threads = j
            .get("threads")
            .and_then(Json::as_usize)
            .ok_or_else(|| KernelError::Spec("threads missing".into()))?;
        let mechanism = match j.get("mechanism") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| KernelError::Spec("mechanism must be a name string".into()))?;
                Some(
                    BarrierMechanism::from_str(name)
                        .map_err(|e| KernelError::Spec(e.to_string()))?,
                )
            }
        };
        let clusters = match j.get("clusters") {
            None | Some(Json::Null) => 1,
            Some(v) => v
                .as_usize()
                .ok_or_else(|| KernelError::Spec("clusters must be a count".into()))?,
        };
        let mut knobs = EngineKnobs::default();
        if let Some(k) = j.get("knobs") {
            if !k.is_null() {
                if let Some(b) = k.get("burst_budget") {
                    if !b.is_null() {
                        knobs.burst_budget = Some(b.as_u64().ok_or_else(|| {
                            KernelError::Spec("knobs.burst_budget must be a number".into())
                        })? as u32);
                    }
                }
                for (name, slot) in [
                    ("decode_cache", &mut knobs.decode_cache),
                    ("event_shards", &mut knobs.event_shards),
                    ("fused_memory", &mut knobs.fused_memory),
                ] {
                    if let Some(v) = k.get(name) {
                        if !v.is_null() {
                            *slot = Some(v.as_bool().ok_or_else(|| {
                                KernelError::Spec(format!("knobs.{name} must be a bool"))
                            })?);
                        }
                    }
                }
            }
        }
        let faults = match j.get("faults") {
            None | Some(Json::Null) => None,
            Some(f) => {
                let field = |name: &str| {
                    f.get(name)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| KernelError::Spec(format!("faults.{name} missing")))
                };
                Some(FaultSpec {
                    seed: field("seed")?,
                    count: field("count")? as usize,
                    horizon: field("horizon")?,
                })
            }
        };
        Ok(RunSpec {
            workload,
            exec: ExecSpec {
                threads,
                mechanism,
                clusters,
                knobs,
                faults,
            },
        })
    }

    /// [`from_json`](RunSpec::from_json) straight from text.
    ///
    /// # Errors
    ///
    /// [`KernelError::Spec`] on malformed JSON or fields.
    pub fn parse(src: &str) -> Result<RunSpec, KernelError> {
        let j = Json::parse(src).map_err(|e| KernelError::Spec(e.to_string()))?;
        RunSpec::from_json(&j)
    }
}

/// The in-process-only side channel of a run: trace sinks, observer
/// hooks and hand-built fault plans. None of these belong in the
/// serializable [`RunSpec`] — they hold host closures and file handles —
/// and all of them are observers or replay drivers: attaching them never
/// changes the run's measurement digest.
#[derive(Default)]
pub struct RunAttachments<'a> {
    /// Trace-sink selection for the built machine (default off).
    pub trace: TraceConfig,
    /// A hook invoked once the barrier is registered; may attach an
    /// explicit sink instance (e.g. the race detector). Not invoked for
    /// sequential runs (there is no barrier to observe).
    #[allow(clippy::type_complexity)]
    pub observe: Option<Box<dyn FnOnce(&Barrier) -> Option<Box<dyn TraceSink>> + 'a>>,
    /// A hand-built fault plan, overriding whatever
    /// [`ExecSpec::fault_plan`] would generate. Used by the chaos tests
    /// to drive specific event sequences.
    pub fault_plan: Option<&'a FaultPlan>,
}

impl<'a> RunAttachments<'a> {
    /// Attachments carrying only a trace selection.
    pub fn traced(trace: TraceConfig) -> RunAttachments<'a> {
        RunAttachments {
            trace,
            ..RunAttachments::default()
        }
    }

    /// Attachments carrying only an observer hook.
    pub fn observed(
        observe: impl FnOnce(&Barrier) -> Option<Box<dyn TraceSink>> + 'a,
    ) -> RunAttachments<'a> {
        RunAttachments {
            observe: Some(Box::new(observe)),
            ..RunAttachments::default()
        }
    }

    /// Attachments carrying only a hand-built fault plan.
    pub fn with_plan(plan: &'a FaultPlan) -> RunAttachments<'a> {
        RunAttachments {
            fault_plan: Some(plan),
            ..RunAttachments::default()
        }
    }
}

/// Everything a finished run produces: the validated outcome, the fault
/// report (all-zero for unfaulted runs), and the assembled program (for
/// post-run static analysis, e.g. the verify harness's race detector).
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The validated measurement.
    pub outcome: KernelOutcome,
    /// What the fault driver actually did.
    pub faults: FaultReport,
    /// The program the machine executed.
    pub program: Program,
}

/// Run `spec` with no attachments: the single in-process entry point the
/// wire protocol and the cache key share.
///
/// # Errors
///
/// Spec validation, build, simulation or output-validation failures.
pub fn run(spec: &RunSpec) -> Result<RunOutput, KernelError> {
    run_with(spec, RunAttachments::default())
}

/// Run `spec` with in-process attachments (traces, observers, hand-built
/// fault plans). The attachments are observers/replay drivers: the
/// outcome is bit-identical to [`run`]`(spec)`.
///
/// # Errors
///
/// Spec validation, build, simulation or output-validation failures.
pub fn run_with(spec: &RunSpec, att: RunAttachments<'_>) -> Result<RunOutput, KernelError> {
    spec.validate()?;
    let exec = &spec.exec;
    match spec.workload {
        WorkloadSpec::Fig4 { inner, outer } => Fig4::new(inner, outer).run_with(exec, att),
        WorkloadSpec::Loop1 { n } => Loop1::new(n).run_with(exec, att),
        WorkloadSpec::Loop2 { n } => Loop2::new(n).run_with(exec, att),
        WorkloadSpec::Loop3 { n } => Loop3::new(n).run_with(exec, att),
        WorkloadSpec::Loop4 { n } => Loop4::new(n).run_with(exec, att),
        WorkloadSpec::Loop5 { n } => Loop5::new(n).run_with(exec, att),
        WorkloadSpec::Loop6 { n } => Loop6::new(n).run_with(exec, att),
        WorkloadSpec::Autocorr { n, lags } => Autocorr::with_lags(n, lags).run_with(exec, att),
        WorkloadSpec::Viterbi {
            constraint,
            data_bits,
            noise_per_mille,
        } => Viterbi::with_params(constraint, data_bits, noise_per_mille).run_with(exec, att),
        WorkloadSpec::Ocean { grid, sweeps } => OceanProxy::new(grid, sweeps).run_with(exec, att),
    }
}

/// Run `machine` for a spec-described kernel of `reps` repetitions:
/// resolve the fault plan (an attachment-supplied plan overrides the
/// spec's seeded one) and drive the faulted-run harness. The empty plan
/// is bit-identical to a plain `Machine::run`.
pub(crate) fn run_spec_reps(
    machine: &mut cmp_sim::Machine,
    reps: u64,
    exec: &ExecSpec,
    att: &RunAttachments<'_>,
) -> Result<(KernelOutcome, FaultReport), KernelError> {
    let resolved;
    let plan = match att.fault_plan {
        Some(plan) => plan,
        None => {
            resolved = exec.fault_plan();
            &resolved
        }
    };
    crate::harness::run_reps_faulted(machine, reps, plan)
}

impl KernelBuild {
    /// Build state for `exec`: the topology preset's machine, the barrier
    /// (when a mechanism is set), trace/knob/observer wiring — in exactly
    /// the order the legacy variants applied them, so the digest path is
    /// unchanged.
    pub(crate) fn from_exec(
        exec: &ExecSpec,
        att: &mut RunAttachments<'_>,
    ) -> Result<(KernelBuild, Option<Barrier>), KernelError> {
        exec.check()?;
        let trace = std::mem::replace(&mut att.trace, TraceConfig::Off);
        match exec.mechanism {
            None => {
                let mut b = KernelBuild::sequential();
                b.trace = trace;
                exec.knobs.apply(&mut b.config);
                Ok((b, None))
            }
            Some(mechanism) => {
                let config = exec.config();
                let mut space = AddressSpace::new(&config);
                let mut asm = Asm::new();
                let mut sys = BarrierSystem::new(&config, exec.threads, &mut space)?;
                let barrier = sys.create_barrier(&mut asm, &mut space, mechanism, exec.threads)?;
                let mut b = KernelBuild {
                    config,
                    space,
                    asm,
                    sys: Some(sys),
                    trace,
                    sink: None,
                    threads: exec.threads,
                };
                exec.knobs.apply(&mut b.config);
                if let Some(observe) = att.observe.take() {
                    b.sink = observe(&barrier);
                }
                Ok((b, Some(barrier)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(spec: RunSpec) {
        let text = spec.canonical_json();
        let back = RunSpec::parse(&text).expect("canonical form re-parses");
        assert_eq!(back, spec, "round trip of {text}");
        assert_eq!(back.canonical_json(), text, "canonical form is a fixpoint");
    }

    #[test]
    fn canonical_json_round_trips_every_workload() {
        roundtrip(RunSpec::fig4(BarrierMechanism::FilterD, 16, 64, 64));
        roundtrip(RunSpec::sequential(WorkloadSpec::Loop5 { n: 64 }));
        roundtrip(RunSpec::parallel(
            WorkloadSpec::Loop2 { n: 64 },
            8,
            BarrierMechanism::SwTree,
        ));
        roundtrip(RunSpec::parallel(
            WorkloadSpec::Autocorr { n: 128, lags: 8 },
            4,
            BarrierMechanism::FilterI,
        ));
        roundtrip(
            RunSpec::parallel(
                WorkloadSpec::Viterbi {
                    constraint: 5,
                    data_bits: 96,
                    noise_per_mille: 10,
                },
                16,
                BarrierMechanism::FilterD,
            )
            .with_faults(u64::MAX, 16, 1 << 40),
        );
        roundtrip(
            RunSpec::fig4(BarrierMechanism::SwHier, 256, 4, 2)
                .clustered(16)
                .with_knobs(EngineKnobs {
                    burst_budget: Some(0),
                    decode_cache: Some(true),
                    event_shards: Some(false),
                    fused_memory: None,
                }),
        );
        roundtrip(RunSpec::parallel(
            WorkloadSpec::Ocean {
                grid: 16,
                sweeps: 2,
            },
            8,
            BarrierMechanism::HwDedicated,
        ));
    }

    #[test]
    fn digest_is_field_sensitive() {
        let base = RunSpec::fig4(BarrierMechanism::FilterD, 16, 64, 64);
        let mut seen = vec![base.digest()];
        for other in [
            RunSpec::fig4(BarrierMechanism::FilterI, 16, 64, 64),
            RunSpec::fig4(BarrierMechanism::FilterD, 8, 64, 64),
            RunSpec::fig4(BarrierMechanism::FilterD, 16, 32, 64),
            base.with_faults(1, 1, 1000),
            base.with_knobs(EngineKnobs {
                decode_cache: Some(false),
                ..EngineKnobs::default()
            }),
            RunSpec::fig4(BarrierMechanism::SwHier, 256, 4, 2).clustered(16),
        ] {
            let d = other.digest();
            assert!(!seen.contains(&d), "digest collision for {other:?}");
            seen.push(d);
        }
    }

    #[test]
    fn tolerant_decode_accepts_reordered_and_sparse_fields() {
        let spec = RunSpec::parse(
            r#"{ "threads": 4, "workload": {"n": 64, "kind": "loop3"},
                 "mechanism": "sw-central", "extra": "ignored" }"#,
        )
        .expect("sparse spec parses");
        assert_eq!(
            spec,
            RunSpec::parallel(
                WorkloadSpec::Loop3 { n: 64 },
                4,
                BarrierMechanism::SwCentral
            )
        );
    }

    #[test]
    fn validation_rejects_inconsistent_specs() {
        for (spec, why) in [
            (
                RunSpec::parallel(WorkloadSpec::Loop5 { n: 64 }, 4, BarrierMechanism::FilterD),
                "recurrence",
            ),
            (
                RunSpec::sequential(WorkloadSpec::Fig4 { inner: 8, outer: 2 }),
                "sequential",
            ),
            (
                RunSpec::parallel(WorkloadSpec::Loop2 { n: 63 }, 4, BarrierMechanism::FilterD),
                "power-of-two",
            ),
            (
                RunSpec::fig4(BarrierMechanism::SwHier, 24, 8, 2).clustered(5),
                "split",
            ),
            (
                RunSpec::parallel(
                    WorkloadSpec::Autocorr { n: 8, lags: 9 },
                    4,
                    BarrierMechanism::FilterD,
                ),
                "lags",
            ),
        ] {
            let err = spec.validate().expect_err(why);
            assert!(matches!(err, KernelError::Spec(_)), "{why}: {err}");
        }
        let mut seq = RunSpec::sequential(WorkloadSpec::Loop5 { n: 64 });
        seq.exec.threads = 4;
        assert!(seq.validate().is_err(), "sequential with 4 threads");
    }

    #[test]
    fn fault_spec_expands_to_the_seeded_plan() {
        let spec = RunSpec::parallel(
            WorkloadSpec::Viterbi {
                constraint: 5,
                data_bits: 24,
                noise_per_mille: 10,
            },
            8,
            BarrierMechanism::FilterD,
        )
        .with_faults(0x1e7b, 16, 500_000);
        let plan = spec.exec.fault_plan();
        assert_eq!(plan.events.len(), 16);
        assert_eq!(
            plan.events,
            FaultPlan::generate(0x1e7b, 16, 500_000).events,
            "same spec, same plan"
        );
        assert!(RunSpec::fig4(BarrierMechanism::FilterD, 4, 2, 1)
            .exec
            .fault_plan()
            .events
            .is_empty());
    }
}
