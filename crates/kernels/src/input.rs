//! Seeded synthetic input generators.
//!
//! The paper's EEMBC inputs (`xspeech`, `getti.dat`) are not distributable,
//! so we generate equivalents with fixed seeds: what matters for the
//! barrier study is the kernels' synchronization structure, which input
//! values do not change (DESIGN.md §1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic generator seeded per use-site.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform f64 values in `[lo, hi)`.
pub fn f64_vec(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// A speech-like waveform: a sum of sinusoids plus noise, quantized to a
/// signed 12-bit range (stored sign-extended in i64), standing in for the
/// EEMBC `xspeech` input.
pub fn speech_like(seed: u64, n: usize) -> Vec<i64> {
    let mut r = rng(seed);
    (0..n)
        .map(|i| {
            let t = i as f64;
            let s = 900.0 * (t * 0.031).sin()
                + 500.0 * (t * 0.127 + 1.0).sin()
                + 250.0 * (t * 0.311 + 2.0).sin()
                + r.gen_range(-80.0..80.0);
            (s as i64).clamp(-2048, 2047)
        })
        .collect()
}

/// A random bit sequence (0/1 values).
pub fn bits(seed: u64, n: usize) -> Vec<u8> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..2u8)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(f64_vec(1, 16, 0.0, 1.0), f64_vec(1, 16, 0.0, 1.0));
        assert_ne!(f64_vec(1, 16, 0.0, 1.0), f64_vec(2, 16, 0.0, 1.0));
        assert_eq!(speech_like(7, 64), speech_like(7, 64));
        assert_eq!(bits(3, 32), bits(3, 32));
    }

    #[test]
    fn speech_values_are_in_range() {
        for v in speech_like(5, 1000) {
            assert!((-2048..=2047).contains(&v));
        }
    }

    #[test]
    fn bits_are_binary() {
        assert!(bits(9, 100).iter().all(|&b| b <= 1));
    }
}
