//! Seeded synthetic input generators.
//!
//! The paper's EEMBC inputs (`xspeech`, `getti.dat`) are not distributable,
//! so we generate equivalents with fixed seeds: what matters for the
//! barrier study is the kernels' synchronization structure, which input
//! values do not change (DESIGN.md §1).
//!
//! The generator is a self-contained xoshiro256++ (std only, no external
//! crates — the build must work with no registry access). Streams are
//! fully determined by the seed and stable across platforms and releases:
//! kernel inputs are part of the determinism contract.

/// Deterministic pseudo-random stream (xoshiro256++, SplitMix64-seeded).
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Seed the stream; equal seeds yield equal streams forever.
    pub fn seed_from_u64(seed: u64) -> Prng {
        // SplitMix64 expansion, the canonical way to fill xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Prng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform u64 in `[0, n)` (widening-multiply range reduction).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform i64 in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Deterministic generator seeded per use-site.
pub fn rng(seed: u64) -> Prng {
    Prng::seed_from_u64(seed)
}

/// Uniform f64 values in `[lo, hi)`.
pub fn f64_vec(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.range_f64(lo, hi)).collect()
}

/// A speech-like waveform: a sum of sinusoids plus noise, quantized to a
/// signed 12-bit range (stored sign-extended in i64), standing in for the
/// EEMBC `xspeech` input.
pub fn speech_like(seed: u64, n: usize) -> Vec<i64> {
    let mut r = rng(seed);
    (0..n)
        .map(|i| {
            let t = i as f64;
            let s = 900.0 * (t * 0.031).sin()
                + 500.0 * (t * 0.127 + 1.0).sin()
                + 250.0 * (t * 0.311 + 2.0).sin()
                + r.range_f64(-80.0, 80.0);
            (s as i64).clamp(-2048, 2047)
        })
        .collect()
}

/// A random bit sequence (0/1 values).
pub fn bits(seed: u64, n: usize) -> Vec<u8> {
    let mut r = rng(seed);
    (0..n).map(|_| r.below(2) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(f64_vec(1, 16, 0.0, 1.0), f64_vec(1, 16, 0.0, 1.0));
        assert_ne!(f64_vec(1, 16, 0.0, 1.0), f64_vec(2, 16, 0.0, 1.0));
        assert_eq!(speech_like(7, 64), speech_like(7, 64));
        assert_eq!(bits(3, 32), bits(3, 32));
    }

    #[test]
    fn speech_values_are_in_range() {
        for v in speech_like(5, 1000) {
            assert!((-2048..=2047).contains(&v));
        }
    }

    #[test]
    fn bits_are_binary() {
        assert!(bits(9, 100).iter().all(|&b| b <= 1));
    }

    #[test]
    fn range_reduction_is_in_bounds() {
        let mut r = rng(11);
        for _ in 0..1000 {
            let v = r.range_i64(-3, 4);
            assert!((-3..4).contains(&v));
            let f = r.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }
}
