//! EEMBC-like fixed-point autocorrelation (Figure 5).
//!
//! The paper hand-parallelizes the EEMBC Auto-Correlation kernel: "an outer
//! loop that iterates over a lag parameter wrapped around an accumulation
//! loop … we used a pair of barriers to transform the accumulation into a
//! set of parallel accumulations and a reduction." The `xspeech` input is
//! replaced by a seeded speech-like waveform (see DESIGN.md).
//!
//! ```c
//! for (k = 0; k < LAGS; k++) {
//!     acc = 0;
//!     for (i = 0; i < n - k; i++) acc += x[i] * x[i + k];
//!     r[k] = acc;
//! }
//! ```

use barrier_filter::{Barrier, BarrierMechanism};
use sim_isa::{Asm, Reg};

use crate::harness::{check_u64, emit_rep_loop, KernelBuild, KernelOutcome, REPS};
use crate::spec::{run_spec_reps, ExecSpec, RunAttachments, RunOutput};
use crate::{input, KernelError};

/// Autocorrelation over `n` samples with `lags` lags (the paper uses
/// lag = 32).
#[derive(Debug, Clone)]
pub struct Autocorr {
    n: usize,
    lags: usize,
    x: Vec<i64>,
}

impl Autocorr {
    /// The paper's configuration: lag 32 over a speech-like input.
    pub fn new(n: usize) -> Autocorr {
        Autocorr::with_lags(n, 32)
    }

    /// Custom lag count.
    ///
    /// # Panics
    ///
    /// Panics if `lags` is zero or `lags > n`.
    pub fn with_lags(n: usize, lags: usize) -> Autocorr {
        assert!(lags > 0 && lags <= n, "need 0 < lags <= n");
        Autocorr {
            n,
            lags,
            x: input::speech_like(0xac_01, n),
        }
    }

    /// Sample count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Lag count.
    pub fn lags(&self) -> usize {
        self.lags
    }

    /// Host reference (exact integer arithmetic; order-independent).
    pub fn reference(&self) -> Vec<u64> {
        (0..self.lags)
            .map(|k| {
                (0..self.n - k)
                    .map(|i| self.x[i].wrapping_mul(self.x[i + k]))
                    .fold(0i64, i64::wrapping_add) as u64
            })
            .collect()
    }

    /// Run the sequential baseline and validate.
    ///
    /// # Errors
    ///
    /// Simulation or validation failures.
    pub fn run_sequential(&self) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(&ExecSpec::sequential(), RunAttachments::default())?
            .outcome)
    }

    /// Run the paper's parallel version: per lag, a parallel partial
    /// accumulation, a barrier, a reduction on thread 0, and a second
    /// barrier.
    ///
    /// # Errors
    ///
    /// Simulation, barrier-setup or validation failures.
    pub fn run_parallel(
        &self,
        threads: usize,
        mechanism: BarrierMechanism,
    ) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(
                &ExecSpec::parallel(threads, mechanism),
                RunAttachments::default(),
            )?
            .outcome)
    }

    /// Run under a full [`ExecSpec`] (threads, mechanism, topology,
    /// engine knobs, seeded faults) with optional in-process
    /// [`RunAttachments`] (trace sinks, observer hooks, hand-built
    /// plans). The integer results are exact, so both shapes validate
    /// against the same host reference; attachments and knobs are
    /// digest-invariant.
    ///
    /// # Errors
    ///
    /// Spec, simulation, barrier-setup or validation failures.
    pub fn run_with(
        &self,
        exec: &ExecSpec,
        mut att: RunAttachments<'_>,
    ) -> Result<RunOutput, KernelError> {
        let (mut b, barrier) = KernelBuild::from_exec(exec, &mut att)?;
        let threads = b.threads;
        let x = b.space.alloc_u64(self.n as u64)?;
        let r = b.space.alloc_u64(self.lags as u64)?;
        match &barrier {
            Some(bar) => {
                let partials = b.space.alloc_lines(threads as u64)?;
                self.emit_parallel_body(&mut b.asm, bar, x, r, partials)?;
            }
            None => emit_rep_loop(&mut b.asm, REPS, |a| {
                a.li(Reg::S0, 0); // k
                a.label("lag_loop")?;
                a.li(Reg::T0, x as i64); // &x[0]
                a.slli(Reg::T1, Reg::S0, 3);
                a.add(Reg::T1, Reg::T0, Reg::T1); // &x[k]
                a.li(Reg::T2, self.n as i64);
                a.sub(Reg::T2, Reg::T2, Reg::S0); // count = n - k
                a.li(Reg::T3, 0); // acc
                a.label("sum_loop")?;
                a.ldd(Reg::T4, Reg::T0, 0);
                a.ldd(Reg::T5, Reg::T1, 0);
                a.mul(Reg::T4, Reg::T4, Reg::T5);
                a.add(Reg::T3, Reg::T3, Reg::T4);
                a.addi(Reg::T0, Reg::T0, 8);
                a.addi(Reg::T1, Reg::T1, 8);
                a.addi(Reg::T2, Reg::T2, -1);
                a.bne(Reg::T2, Reg::ZERO, "sum_loop");
                a.slli(Reg::T4, Reg::S0, 3);
                a.li(Reg::T5, r as i64);
                a.add(Reg::T5, Reg::T5, Reg::T4);
                a.std(Reg::T3, Reg::T5, 0);
                a.addi(Reg::S0, Reg::S0, 1);
                a.li(Reg::T4, self.lags as i64);
                a.blt(Reg::S0, Reg::T4, "lag_loop");
                Ok(())
            })?,
        }
        let xs: Vec<u64> = self.x.iter().map(|&v| v as u64).collect();
        let mut m = b.finish(move |mb| {
            mb.write_u64_slice(x, &xs);
        })?;
        let (outcome, faults) = run_spec_reps(&mut m, REPS, exec, &att)?;
        check_u64("r", &m.read_u64_slice(r, self.lags), &self.reference())?;
        Ok(RunOutput {
            outcome,
            faults,
            program: m.program().clone(),
        })
    }

    fn emit_parallel_body(
        &self,
        a: &mut Asm,
        barrier: &Barrier,
        x: u64,
        r: u64,
        partials: u64,
    ) -> Result<(), KernelError> {
        emit_rep_loop(a, REPS, |a| {
            a.li(Reg::S0, 0); // k
            a.label("lag_loop")?;
            // cnt = n - k; chunk = max(8, ceil(cnt / NTID))
            a.li(Reg::T0, self.n as i64);
            a.sub(Reg::T0, Reg::T0, Reg::S0);
            a.div(Reg::T1, Reg::T0, Reg::NTID);
            a.rem(Reg::T2, Reg::T0, Reg::NTID);
            a.sltu(Reg::T2, Reg::ZERO, Reg::T2);
            a.add(Reg::T1, Reg::T1, Reg::T2);
            a.li(Reg::T2, 8);
            a.max(Reg::T1, Reg::T1, Reg::T2); // chunk
            a.mul(Reg::T2, Reg::TID, Reg::T1); // lo
            a.add(Reg::T3, Reg::T2, Reg::T1);
            a.min(Reg::T3, Reg::T3, Reg::T0); // hi
            a.li(Reg::T4, 0); // acc
            a.bge(Reg::T2, Reg::T3, "partial_store");
            a.slli(Reg::T5, Reg::T2, 3);
            a.li(Reg::T0, x as i64);
            a.add(Reg::T5, Reg::T0, Reg::T5); // &x[lo]
            a.slli(Reg::T0, Reg::S0, 3);
            a.add(Reg::T0, Reg::T5, Reg::T0); // &x[lo + k]
            a.sub(Reg::T3, Reg::T3, Reg::T2); // count
            a.label("sum_loop")?;
            a.ldd(Reg::T1, Reg::T5, 0);
            a.ldd(Reg::T2, Reg::T0, 0);
            a.mul(Reg::T1, Reg::T1, Reg::T2);
            a.add(Reg::T4, Reg::T4, Reg::T1);
            a.addi(Reg::T5, Reg::T5, 8);
            a.addi(Reg::T0, Reg::T0, 8);
            a.addi(Reg::T3, Reg::T3, -1);
            a.bne(Reg::T3, Reg::ZERO, "sum_loop");
            a.label("partial_store")?;
            a.slli(Reg::T5, Reg::TID, 6);
            a.li(Reg::T0, partials as i64);
            a.add(Reg::T0, Reg::T0, Reg::T5);
            a.std(Reg::T4, Reg::T0, 0);
            barrier.emit_call(a);
            a.bne(Reg::TID, Reg::ZERO, "red_done");
            a.li(Reg::T0, partials as i64);
            a.li(Reg::T1, 0);
            a.li(Reg::T2, 0);
            a.label("red_loop")?;
            a.ldd(Reg::T3, Reg::T0, 0);
            a.add(Reg::T2, Reg::T2, Reg::T3);
            a.addi(Reg::T0, Reg::T0, 64);
            a.addi(Reg::T1, Reg::T1, 1);
            a.blt(Reg::T1, Reg::NTID, "red_loop");
            a.slli(Reg::T3, Reg::S0, 3);
            a.li(Reg::T4, r as i64);
            a.add(Reg::T4, Reg::T4, Reg::T3);
            a.std(Reg::T2, Reg::T4, 0);
            a.label("red_done")?;
            barrier.emit_call(a);
            a.addi(Reg::S0, Reg::S0, 1);
            a.li(Reg::T0, self.lags as i64);
            a.blt(Reg::S0, Reg::T0, "lag_loop");
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_matches_host() {
        Autocorr::with_lags(128, 8).run_sequential().unwrap();
    }

    #[test]
    fn parallel_filter_matches_host() {
        Autocorr::with_lags(256, 8)
            .run_parallel(4, BarrierMechanism::FilterD)
            .unwrap();
    }

    #[test]
    fn parallel_sw_matches_host() {
        Autocorr::with_lags(128, 4)
            .run_parallel(16, BarrierMechanism::SwTree)
            .unwrap();
    }

    #[test]
    fn reference_is_plausible() {
        // r[0] is the signal energy: strictly positive and the maximum
        let a = Autocorr::new(512);
        let r = a.reference();
        assert!(r[0] > 0);
        let r0 = r[0] as i64;
        assert!(r.iter().all(|&v| (v as i64) <= r0));
    }
}
