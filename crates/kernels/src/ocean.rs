//! Coarse-grained contrast case (§4.1): a SPLASH-2 Ocean-like iterative
//! stencil.
//!
//! The paper found that SPLASH-2 benchmarks "only took advantage of
//! coarse-grain barrier parallelism" — Ocean executes "only hundreds of
//! dynamic barriers versus tens of millions of instructions per thread",
//! so barriers are under 4% of execution time and a filter barrier improves
//! the whole program by only ≈3.5%. This proxy reproduces that regime: a
//! red-black Gauss–Seidel relaxation over a grid, row-partitioned, two
//! barriers per sweep, with per-barrier work that dwarfs barrier latency.

use barrier_filter::{Barrier, BarrierMechanism};
use sim_isa::{Asm, FReg, Reg};

use crate::harness::{check_f64, KernelBuild, KernelOutcome};
use crate::spec::{run_spec_reps, ExecSpec, RunAttachments, RunOutput};
use crate::{input, KernelError};

/// A red-black Gauss–Seidel stencil on a `g`×`g` grid for `sweeps` sweeps.
#[derive(Debug, Clone)]
pub struct OceanProxy {
    g: usize,
    sweeps: usize,
    u0: Vec<f64>,
}

impl OceanProxy {
    /// Grid of side `g` (≥ 4), `sweeps` relaxation sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `g < 4`.
    pub fn new(g: usize, sweeps: usize) -> OceanProxy {
        assert!(g >= 4, "grid too small");
        OceanProxy {
            g,
            sweeps,
            u0: input::f64_vec(0x0c_01, g * g, 0.0, 1.0),
        }
    }

    /// Grid side.
    pub fn g(&self) -> usize {
        self.g
    }

    /// Number of dynamic barriers a parallel run executes.
    pub fn dynamic_barriers(&self) -> usize {
        2 * self.sweeps
    }

    /// Host reference (identical update order modulo the race-free
    /// red/black independence).
    pub fn reference(&self) -> Vec<f64> {
        let g = self.g;
        let mut u = self.u0.clone();
        for _ in 0..self.sweeps {
            for phase in 0..2usize {
                for i in 1..g - 1 {
                    let j0 = 1 + ((i + phase + 1) & 1);
                    let mut j = j0;
                    while j < g - 1 {
                        u[i * g + j] = 0.25
                            * (u[i * g + j - 1]
                                + u[i * g + j + 1]
                                + u[(i - 1) * g + j]
                                + u[(i + 1) * g + j]);
                        j += 2;
                    }
                }
            }
        }
        u
    }

    /// Run the sequential baseline and validate.
    ///
    /// # Errors
    ///
    /// Simulation or validation failures.
    pub fn run_sequential(&self) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(&ExecSpec::sequential(), RunAttachments::default())?
            .outcome)
    }

    /// Run the row-partitioned parallel version and validate.
    ///
    /// # Errors
    ///
    /// Simulation, barrier-setup or validation failures.
    pub fn run_parallel(
        &self,
        threads: usize,
        mechanism: BarrierMechanism,
    ) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(
                &ExecSpec::parallel(threads, mechanism),
                RunAttachments::default(),
            )?
            .outcome)
    }

    /// Run under a full [`ExecSpec`] (threads, mechanism, topology,
    /// engine knobs, seeded faults) with optional in-process
    /// [`RunAttachments`] (trace sinks, observer hooks, hand-built
    /// plans). The relaxed grid is always validated against the host
    /// reference; attachments and knobs are digest-invariant.
    ///
    /// # Errors
    ///
    /// Spec, simulation, barrier-setup or validation failures.
    pub fn run_with(
        &self,
        exec: &ExecSpec,
        mut att: RunAttachments<'_>,
    ) -> Result<RunOutput, KernelError> {
        let g = self.g;
        let (mut b, barrier) = KernelBuild::from_exec(exec, &mut att)?;
        let threads = b.threads;
        let u = b.space.alloc_f64((g * g) as u64)?;
        self.emit_body(&mut b.asm, barrier.as_ref(), u, threads)?;
        let us = self.u0.clone();
        let mut m = b.finish(move |mb| {
            mb.write_f64_slice(u, &us);
        })?;
        // One "rep" = the whole multi-sweep solve.
        let (outcome, faults) = run_spec_reps(&mut m, 1, exec, &att)?;
        check_f64("u", &m.read_f64_slice(u, g * g), &self.reference(), 1e-9)?;
        Ok(RunOutput {
            outcome,
            faults,
            program: m.program().clone(),
        })
    }

    fn emit_body(
        &self,
        a: &mut Asm,
        barrier: Option<&Barrier>,
        u: u64,
        threads: usize,
    ) -> Result<(), KernelError> {
        let g = self.g as i64;
        let rows = self.g - 2; // interior rows
        let rows_per = rows.div_ceil(threads) as i64;
        let row_bytes = g * 8;
        a.label("entry")?;
        // my rows: lo = 1 + tid*rows_per, hi = min(lo + rows_per, g-1)
        a.li(Reg::S1, rows_per);
        a.mul(Reg::S1, Reg::TID, Reg::S1);
        a.addi(Reg::S1, Reg::S1, 1); // lo
        a.addi(Reg::S2, Reg::S1, rows_per);
        a.li(Reg::T0, g - 1);
        a.min(Reg::S2, Reg::S2, Reg::T0); // hi
        a.fli(FReg::F5, 0.25);
        a.li(Reg::S0, self.sweeps as i64);
        a.label("sweep_loop")?;
        for phase in 0..2i64 {
            let p = phase;
            let row_loop = format!("row_loop_{p}");
            let col_loop = format!("col_loop_{p}");
            let row_next = format!("row_next_{p}");
            let rows_done = format!("rows_done_{p}");
            a.bge(Reg::S1, Reg::S2, rows_done.as_str());
            a.mv(Reg::T0, Reg::S1); // i
            a.label(&row_loop)?;
            // j0 = 1 + ((i + phase + 1) & 1)
            a.addi(Reg::T1, Reg::T0, p + 1);
            a.andi(Reg::T1, Reg::T1, 1);
            a.addi(Reg::T1, Reg::T1, 1);
            // ptr = u + (i*g + j0)*8
            a.li(Reg::T2, g);
            a.mul(Reg::T2, Reg::T0, Reg::T2);
            a.add(Reg::T2, Reg::T2, Reg::T1);
            a.slli(Reg::T2, Reg::T2, 3);
            a.li(Reg::T3, u as i64);
            a.add(Reg::T3, Reg::T3, Reg::T2);
            // count = (g - 1 - j0 + 1) / 2 = (g - j0) / 2
            a.li(Reg::T4, g);
            a.sub(Reg::T4, Reg::T4, Reg::T1);
            a.srli(Reg::T4, Reg::T4, 1);
            a.beq(Reg::T4, Reg::ZERO, row_next.as_str());
            a.label(&col_loop)?;
            a.fld(FReg::F0, Reg::T3, -8);
            a.fld(FReg::F1, Reg::T3, 8);
            a.fadd(FReg::F0, FReg::F0, FReg::F1);
            a.fld(FReg::F1, Reg::T3, -row_bytes);
            a.fadd(FReg::F0, FReg::F0, FReg::F1);
            a.fld(FReg::F1, Reg::T3, row_bytes);
            a.fadd(FReg::F0, FReg::F0, FReg::F1);
            a.fmul(FReg::F0, FReg::F0, FReg::F5);
            a.fst(FReg::F0, Reg::T3, 0);
            a.addi(Reg::T3, Reg::T3, 16);
            a.addi(Reg::T4, Reg::T4, -1);
            a.bne(Reg::T4, Reg::ZERO, col_loop.as_str());
            a.label(&row_next)?;
            a.addi(Reg::T0, Reg::T0, 1);
            a.blt(Reg::T0, Reg::S2, row_loop.as_str());
            a.label(&rows_done)?;
            if let Some(bar) = barrier {
                bar.emit_call(a);
            }
        }
        a.addi(Reg::S0, Reg::S0, -1);
        a.bne(Reg::S0, Reg::ZERO, "sweep_loop");
        a.halt();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_matches_host() {
        OceanProxy::new(16, 3).run_sequential().unwrap();
    }

    #[test]
    fn parallel_matches_host() {
        OceanProxy::new(18, 3)
            .run_parallel(4, BarrierMechanism::FilterD)
            .unwrap();
    }

    #[test]
    fn parallel_sw_matches_host() {
        OceanProxy::new(16, 2)
            .run_parallel(8, BarrierMechanism::SwCentral)
            .unwrap();
    }

    #[test]
    fn reference_converges_toward_smoothness() {
        // relaxation drives interior values toward the mean of their
        // neighbourhood; after many sweeps the grid variance shrinks
        let o = OceanProxy::new(12, 50);
        let u = o.reference();
        let interior: Vec<f64> = (1..11)
            .flat_map(|i| {
                let u = &u;
                (1..11).map(move |j| u[i * 12 + j])
            })
            .collect();
        let mean = interior.iter().sum::<f64>() / interior.len() as f64;
        let var = interior.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / interior.len() as f64;
        assert!(var < 0.05, "variance {var} did not shrink");
    }
}
