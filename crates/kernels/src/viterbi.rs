//! EEMBC-like Viterbi decoder (Figure 6).
//!
//! The paper parallelizes the EEMBC Viterbi Decoder kernel (IS-136 channel
//! decoding), using barriers "to enforce ordering between successive calls
//! to parallelized subroutines" — here, between the add-compare-select
//! (ACS) steps of successive trellis stages. With 16 states spread over 16
//! cores each thread owns a *single* ACS butterfly per stage: parallelism
//! doesn't get finer than this, which is exactly why the software-barrier
//! version is slower than sequential (Table 1: 0.76×).
//!
//! The decoder is a rate-1/2 convolutional Viterbi with *soft-decision*
//! branch metrics (3-bit soft symbols, like EEMBC's soft inputs): K=5
//! (16 states, generators 23/35 octal, the IS-136 flavour) or K=7
//! (64 states, 171/133 octal). The `getti.dat` input is replaced by a
//! seeded random bitstream transmitted over a noisy soft channel.

use barrier_filter::{Barrier, BarrierMechanism};
use sim_isa::{Asm, MemWidth, Reg};

use crate::harness::{check_u64, emit_rep_loop, KernelBuild, KernelOutcome, REPS};
use crate::spec::{run_spec_reps, ExecSpec, RunAttachments, RunOutput};
use crate::{input, KernelError};

const BIG: i64 = 1 << 20;
/// Full-scale soft level for a transmitted 1 bit.
const SOFT_ONE: i64 = 7;

/// A Viterbi decoding workload.
#[derive(Debug, Clone)]
pub struct Viterbi {
    constraint: u32,
    data_bits: usize,
    bits: Vec<u8>,
    /// Soft received levels for the first and second output bit per stage.
    recv0: Vec<i64>,
    recv1: Vec<i64>,
}

impl Viterbi {
    /// The EEMBC-like configuration: K=5 (16 states) over `data_bits`
    /// random bits with 1% soft-channel noise.
    pub fn new(data_bits: usize) -> Viterbi {
        Viterbi::with_params(5, data_bits, 10)
    }

    /// Custom constraint length (5 or 7) and noise rate (per mille of
    /// soft symbols perturbed).
    ///
    /// # Panics
    ///
    /// Panics if `constraint` is not 5 or 7.
    pub fn with_params(constraint: u32, data_bits: usize, noise_per_mille: u32) -> Viterbi {
        assert!(
            constraint == 5 || constraint == 7,
            "constraint length must be 5 or 7"
        );
        let bits = input::bits(0x7e_01, data_bits);
        let mut v = Viterbi {
            constraint,
            data_bits,
            bits,
            recv0: Vec::new(),
            recv1: Vec::new(),
        };
        v.transmit(noise_per_mille);
        v
    }

    /// Number of trellis states.
    pub fn states(&self) -> usize {
        1 << (self.constraint - 1)
    }

    /// Trellis stages (data bits plus the K-1 flush bits).
    pub fn stages(&self) -> usize {
        self.data_bits + self.constraint as usize - 1
    }

    fn generators(&self) -> (u32, u32) {
        match self.constraint {
            5 => (0o23, 0o35),
            _ => (0o171, 0o133),
        }
    }

    /// Expected output bits for register value `m`.
    fn outputs(&self, m: u32) -> (i64, i64) {
        let (g0, g1) = self.generators();
        let p = |x: u32| (x.count_ones() & 1) as i64;
        (p(m & g0), p(m & g1))
    }

    /// The expected soft levels for each register value `m` in
    /// `0..2*states`: `(SOFT_ONE * o0, SOFT_ONE * o1)`.
    pub fn level_tables(&self) -> (Vec<u64>, Vec<u64>) {
        let ms = 0..2 * self.states() as u32;
        let l0 = ms.clone().map(|m| (SOFT_ONE * self.outputs(m).0) as u64);
        let l1 = ms.map(|m| (SOFT_ONE * self.outputs(m).1) as u64);
        (l0.collect(), l1.collect())
    }

    fn transmit(&mut self, noise_per_mille: u32) {
        let mask = self.states() as u32 - 1;
        let mut noise = input::rng(0x7e_02);
        let mut p = 0u32;
        let mut soften = |bit: i64| -> i64 {
            let mut level = SOFT_ONE * bit;
            if noise.below(1000) < noise_per_mille as u64 {
                level += noise.range_i64(-3, 4);
            }
            level.clamp(0, SOFT_ONE)
        };
        let padded = self
            .bits
            .iter()
            .copied()
            .chain(std::iter::repeat_n(0, self.constraint as usize - 1));
        for u in padded {
            let m = (p << 1) | u as u32;
            let (o0, o1) = self.outputs(m);
            self.recv0.push(soften(o0));
            self.recv1.push(soften(o1));
            p = m & mask;
        }
    }

    /// Host reference decoder, an exact mirror of the simulated ACS and
    /// traceback (ties prefer the low-index predecessor / state).
    pub fn reference_decode(&self) -> Vec<u64> {
        let s_count = self.states();
        let t_count = self.stages();
        let mut pm: Vec<i64> = (0..s_count).map(|s| if s == 0 { 0 } else { BIG }).collect();
        let mut dec = vec![0u8; t_count * s_count];
        for t in 0..t_count {
            let (r0, r1) = (self.recv0[t], self.recv1[t]);
            let mut next = vec![0i64; s_count];
            for s in 0..s_count {
                let p0 = s >> 1;
                let p1 = p0 | (s_count >> 1);
                let bm = |m: u32| {
                    let (o0, o1) = self.outputs(m);
                    (SOFT_ONE * o0 - r0).abs() + (SOFT_ONE * o1 - r1).abs()
                };
                let c0 = pm[p0] + bm(s as u32);
                let c1 = pm[p1] + bm((s | s_count) as u32);
                let take1 = c1 < c0;
                dec[t * s_count + s] = take1 as u8;
                next[s] = c0.min(c1);
            }
            pm = next;
        }
        // best final state: lowest metric, lowest index on ties
        let mut best = 0usize;
        for s in 1..s_count {
            if pm[s] < pm[best] {
                best = s;
            }
        }
        let mut out = vec![0u64; t_count];
        let mut s = best;
        for t in (0..t_count).rev() {
            out[t] = (s & 1) as u64;
            let d = dec[t * s_count + s] as usize;
            s = (s >> 1) | (d << (self.constraint as usize - 2));
        }
        out
    }

    /// Run the sequential baseline and validate against the host decoder.
    ///
    /// # Errors
    ///
    /// Simulation or validation failures.
    pub fn run_sequential(&self) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(&ExecSpec::sequential(), RunAttachments::default())?
            .outcome)
    }

    /// Run the parallel version (states partitioned across threads, one
    /// barrier per trellis stage) and validate.
    ///
    /// # Errors
    ///
    /// Simulation, barrier-setup or validation failures.
    pub fn run_parallel(
        &self,
        threads: usize,
        mechanism: BarrierMechanism,
    ) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(
                &ExecSpec::parallel(threads, mechanism),
                RunAttachments::default(),
            )?
            .outcome)
    }

    /// Run under a full [`ExecSpec`] (threads, mechanism, topology,
    /// engine knobs, seeded faults) with optional in-process
    /// [`RunAttachments`] (trace sinks, observer hooks, hand-built
    /// plans). The decoded output is always validated against the host
    /// decoder, and after a faulted run the filter tables must end
    /// quiescent — the §3.3.3 graceful-degradation contract. Knobs and
    /// attachments are digest-invariant: the outcome's
    /// [`Measurement`](cmp_sim::Measurement) is bit-identical across any
    /// combination.
    ///
    /// # Errors
    ///
    /// Spec, simulation, barrier-setup or validation failures.
    pub fn run_with(
        &self,
        exec: &ExecSpec,
        mut att: RunAttachments<'_>,
    ) -> Result<RunOutput, KernelError> {
        let s_count = self.states();
        let t_count = self.stages();
        let (mut b, barrier) = KernelBuild::from_exec(exec, &mut att)?;
        let threads = b.threads;
        let lvl0 = b.space.alloc_u64(2 * s_count as u64)?;
        let lvl1 = b.space.alloc_u64(2 * s_count as u64)?;
        let recv0 = b.space.alloc_u64(t_count as u64)?;
        let recv1 = b.space.alloc_u64(t_count as u64)?;
        // The path-metric and decision arrays are compact (8 bytes per
        // state), exactly like the EEMBC kernel's: adjacent states belong
        // to different threads, so every trellis stage ping-pongs shared
        // lines between cores. That false sharing is part of why this
        // kernel parallelizes so poorly (Figure 6).
        let pm_a = b.space.alloc_u64(s_count as u64)?;
        let pm_b = b.space.alloc_u64(s_count as u64)?;
        let dec = b.space.alloc_u64((t_count * s_count) as u64)?;
        let out = b.space.alloc_u64(t_count as u64)?;
        let chunk = s_count.div_ceil(threads);
        self.emit_body(
            &mut b.asm,
            barrier.as_ref(),
            Layout {
                lvl0,
                lvl1,
                recv0,
                recv1,
                pm_a,
                pm_b,
                dec,
                out,
                chunk,
            },
        )?;
        let (l0, l1) = self.level_tables();
        let r0: Vec<u64> = self.recv0.iter().map(|&v| v as u64).collect();
        let r1: Vec<u64> = self.recv1.iter().map(|&v| v as u64).collect();
        let mut m = b.finish(move |mb| {
            mb.write_u64_slice(lvl0, &l0);
            mb.write_u64_slice(lvl1, &l1);
            mb.write_u64_slice(recv0, &r0);
            mb.write_u64_slice(recv1, &r1);
        })?;
        let (outcome, faults) = run_spec_reps(&mut m, REPS, exec, &att)?;
        check_u64(
            "decoded",
            &m.read_u64_slice(out, t_count),
            &self.reference_decode(),
        )?;
        Ok(RunOutput {
            outcome,
            faults,
            program: m.program().clone(),
        })
    }

    fn emit_body(
        &self,
        a: &mut Asm,
        barrier: Option<&Barrier>,
        l: Layout,
    ) -> Result<(), KernelError> {
        let s_count = self.states() as i64;
        let t_count = self.stages() as i64;
        let half_off = (self.states() / 2 * 8) as i64; // pm[p0] -> pm[p1]
        let hi_off = (self.states() * 8) as i64; // lvl[m0] -> lvl[m1]
        let dec_stride = s_count * 8;
        let shift_back = self.constraint as u8 - 2;
        let call_barrier = |a: &mut Asm| {
            if let Some(bar) = barrier {
                bar.emit_call(a);
            }
        };
        // |x| in a register: x = (x ^ (x >> 63)) - (x >> 63), into A2 using
        // A6 as scratch.
        let emit_abs_into_a2 = |a: &mut Asm| {
            a.srai(Reg::A6, Reg::A2, 63);
            a.xor(Reg::A2, Reg::A2, Reg::A6);
            a.sub(Reg::A2, Reg::A2, Reg::A6);
        };
        emit_rep_loop(a, REPS, |a| {
            // --- per-rep init: my chunk of pm_a; bases into s1/s2/a0 ---
            a.li(Reg::S1, l.pm_a as i64);
            a.li(Reg::S2, l.pm_b as i64);
            a.li(Reg::A0, l.dec as i64);
            a.li(Reg::A1, l.lvl0 as i64);
            a.li(Reg::A4, l.lvl1 as i64);
            a.li(Reg::A3, l.recv0 as i64);
            a.li(Reg::A7, l.recv1 as i64);
            a.li(Reg::T0, l.chunk as i64);
            a.mul(Reg::T1, Reg::TID, Reg::T0); // lo
            a.add(Reg::T2, Reg::T1, Reg::T0);
            a.li(Reg::T3, s_count);
            a.min(Reg::T2, Reg::T2, Reg::T3); // hi
            a.bge(Reg::T1, Reg::T2, "init_done");
            a.slli(Reg::T3, Reg::T1, 3);
            a.add(Reg::T3, Reg::S1, Reg::T3);
            a.mv(Reg::T4, Reg::T1);
            a.label("init_loop")?;
            a.li(Reg::T5, BIG);
            a.bne(Reg::T4, Reg::ZERO, "init_store");
            a.li(Reg::T5, 0);
            a.label("init_store")?;
            a.std(Reg::T5, Reg::T3, 0);
            a.addi(Reg::T3, Reg::T3, 8);
            a.addi(Reg::T4, Reg::T4, 1);
            a.blt(Reg::T4, Reg::T2, "init_loop");
            a.label("init_done")?;
            call_barrier(a);
            // --- trellis stages ---
            a.li(Reg::S0, 0); // t
            a.label("stage_loop")?;
            a.slli(Reg::T2, Reg::S0, 3);
            a.add(Reg::T3, Reg::A3, Reg::T2);
            a.ldd(Reg::S4, Reg::T3, 0); // r0
            a.add(Reg::T3, Reg::A7, Reg::T2);
            a.ldd(Reg::A5, Reg::T3, 0); // r1
            a.li(Reg::T1, l.chunk as i64);
            a.mul(Reg::T0, Reg::TID, Reg::T1); // s = lo
            a.add(Reg::T1, Reg::T0, Reg::T1);
            a.li(Reg::T2, s_count);
            a.min(Reg::T1, Reg::T1, Reg::T2); // hi
            a.bge(Reg::T0, Reg::T1, "acs_done");
            a.label("state_loop")?;
            // pm[p0], pm[p1]  (p1 = p0 + states/2)
            a.srli(Reg::T2, Reg::T0, 1);
            a.slli(Reg::T3, Reg::T2, 3);
            a.add(Reg::T3, Reg::S1, Reg::T3);
            a.ldd(Reg::T4, Reg::T3, 0);
            a.ld(Reg::T5, Reg::T3, half_off, MemWidth::D);
            a.slli(Reg::T2, Reg::T0, 3); // m0 table offset
                                         // c0: soft branch metric for m0 = s
            a.add(Reg::T3, Reg::A1, Reg::T2);
            a.ldd(Reg::A2, Reg::T3, 0);
            a.sub(Reg::A2, Reg::A2, Reg::S4);
            emit_abs_into_a2(a);
            a.add(Reg::T4, Reg::T4, Reg::A2);
            a.add(Reg::T3, Reg::A4, Reg::T2);
            a.ldd(Reg::A2, Reg::T3, 0);
            a.sub(Reg::A2, Reg::A2, Reg::A5);
            emit_abs_into_a2(a);
            a.add(Reg::T4, Reg::T4, Reg::A2); // c0
                                              // c1: soft branch metric for m1 = s + states
            a.add(Reg::T3, Reg::A1, Reg::T2);
            a.ld(Reg::A2, Reg::T3, hi_off, MemWidth::D);
            a.sub(Reg::A2, Reg::A2, Reg::S4);
            emit_abs_into_a2(a);
            a.add(Reg::T5, Reg::T5, Reg::A2);
            a.add(Reg::T3, Reg::A4, Reg::T2);
            a.ld(Reg::A2, Reg::T3, hi_off, MemWidth::D);
            a.sub(Reg::A2, Reg::A2, Reg::A5);
            emit_abs_into_a2(a);
            a.add(Reg::T5, Reg::T5, Reg::A2); // c1
            a.slt(Reg::A2, Reg::T5, Reg::T4); // dec = c1 < c0
            a.min(Reg::T4, Reg::T4, Reg::T5);
            a.slli(Reg::T5, Reg::T0, 3); // per-state offset
            a.add(Reg::T3, Reg::S2, Reg::T5);
            a.std(Reg::T4, Reg::T3, 0); // pm_next[s]
            a.add(Reg::T3, Reg::A0, Reg::T5);
            a.std(Reg::A2, Reg::T3, 0); // dec[t][s]
            a.addi(Reg::T0, Reg::T0, 1);
            a.blt(Reg::T0, Reg::T1, "state_loop");
            a.label("acs_done")?;
            call_barrier(a);
            // swap pm buffers, advance dec pointer
            a.mv(Reg::T2, Reg::S1);
            a.mv(Reg::S1, Reg::S2);
            a.mv(Reg::S2, Reg::T2);
            a.addi(Reg::A0, Reg::A0, dec_stride);
            a.addi(Reg::S0, Reg::S0, 1);
            a.li(Reg::T2, t_count);
            a.blt(Reg::S0, Reg::T2, "stage_loop");
            // --- traceback on thread 0 ---
            a.bne(Reg::TID, Reg::ZERO, "tb_done");
            // best final state (lowest metric, lowest index wins)
            a.li(Reg::T0, 1);
            a.li(Reg::T1, 0); // best state
            a.ldd(Reg::T2, Reg::S1, 0); // best metric
            a.label("tb_scan")?;
            a.slli(Reg::T3, Reg::T0, 3);
            a.add(Reg::T3, Reg::S1, Reg::T3);
            a.ldd(Reg::T4, Reg::T3, 0);
            a.bge(Reg::T4, Reg::T2, "tb_skip");
            a.mv(Reg::T2, Reg::T4);
            a.mv(Reg::T1, Reg::T0);
            a.label("tb_skip")?;
            a.addi(Reg::T0, Reg::T0, 1);
            a.li(Reg::T3, s_count);
            a.blt(Reg::T0, Reg::T3, "tb_scan");
            // walk back
            a.li(Reg::T0, t_count - 1);
            a.label("tb_loop")?;
            a.addi(Reg::A0, Reg::A0, -dec_stride);
            a.slli(Reg::T3, Reg::T1, 3);
            a.add(Reg::T3, Reg::A0, Reg::T3);
            a.ldd(Reg::T4, Reg::T3, 0); // dec bit
            a.andi(Reg::T5, Reg::T1, 1);
            a.slli(Reg::T3, Reg::T0, 3);
            a.li(Reg::T2, l.out as i64);
            a.add(Reg::T2, Reg::T2, Reg::T3);
            a.std(Reg::T5, Reg::T2, 0); // out[t] = s & 1
            a.srli(Reg::T1, Reg::T1, 1);
            a.slli(Reg::T4, Reg::T4, shift_back);
            a.or(Reg::T1, Reg::T1, Reg::T4);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bge(Reg::T0, Reg::ZERO, "tb_loop");
            a.label("tb_done")?;
            call_barrier(a);
            Ok(())
        })
    }
}

struct Layout {
    lvl0: u64,
    lvl1: u64,
    recv0: u64,
    recv1: u64,
    pm_a: u64,
    pm_b: u64,
    dec: u64,
    out: u64,
    chunk: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_decode_recovers_the_bits() {
        let v = Viterbi::with_params(5, 64, 0);
        let decoded = v.reference_decode();
        for (i, &b) in v.bits.iter().enumerate() {
            assert_eq!(decoded[i], b as u64, "bit {i}");
        }
    }

    #[test]
    fn noisy_decode_mostly_recovers_the_bits() {
        let v = Viterbi::new(256); // 1% soft-channel noise
        let decoded = v.reference_decode();
        let errors: usize = v
            .bits
            .iter()
            .enumerate()
            .filter(|&(i, &b)| decoded[i] != b as u64)
            .count();
        assert!(errors <= 4, "too many residual errors: {errors}");
    }

    #[test]
    fn sequential_matches_host() {
        Viterbi::new(32).run_sequential().unwrap();
    }

    #[test]
    fn parallel_filter_matches_host() {
        Viterbi::new(48)
            .run_parallel(4, BarrierMechanism::FilterD)
            .unwrap();
    }

    #[test]
    fn parallel_sw_matches_host() {
        Viterbi::new(32)
            .run_parallel(8, BarrierMechanism::SwCentral)
            .unwrap();
    }

    #[test]
    fn k7_variant_works() {
        let v = Viterbi::with_params(7, 24, 0);
        assert_eq!(v.states(), 64);
        v.run_parallel(4, BarrierMechanism::HwDedicated).unwrap();
    }
}
