//! Livermore Loop 2: excerpt from an incomplete Cholesky conjugate gradient
//! (Figure 7).
//!
//! The sequential form (transcribed from Netlib, as printed in §4.4):
//!
//! ```c
//! ii = n; ipntp = 0;
//! do {
//!     ipnt = ipntp; ipntp += ii; ii /= 2; i = ipntp;
//!     for (k = ipnt + 1; k < ipntp; k += 2) {
//!         i++;
//!         x[i] = x[k] - v[k] * x[k-1] - v[k+1] * x[k+1];
//!     }
//! } while (ii > 1);
//! ```
//!
//! The parallel version is the paper's chunked decomposition: each
//! `do-while` stage's k-loop is split into per-thread chunks of at least 8
//! doubles, with a barrier after every stage. "The amount of data operated
//! upon, and thus the available parallelism, decreases by a factor of two
//! with successive iterations of the do-while loop" — which is why this
//! kernel has the latest crossover of the three (vector length 256).

use barrier_filter::{Barrier, BarrierMechanism};
use sim_isa::{Asm, FReg, Reg};

use crate::harness::{check_f64, emit_rep_loop, KernelBuild, KernelOutcome, REPS};
use crate::spec::{run_spec_reps, ExecSpec, RunAttachments, RunOutput};
use crate::{input, KernelError};

/// Livermore Loop 2 at vector length `n` (must be a power of two ≥ 4).
#[derive(Debug, Clone)]
pub struct Loop2 {
    n: usize,
    x0: Vec<f64>,
    v: Vec<f64>,
}

/// One host-side application of the ICCG transformation, element order
/// identical to both simulated versions.
fn host_step(x: &mut [f64], v: &[f64], n: usize) {
    let mut ii = n;
    let mut ipntp = 0usize;
    loop {
        let ipnt = ipntp;
        ipntp += ii;
        ii /= 2;
        let mut i = ipntp;
        let mut k = ipnt + 1;
        while k < ipntp {
            i += 1;
            x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
            k += 2;
        }
        if ii <= 1 {
            break;
        }
    }
}

impl Loop2 {
    /// Kernel instance with the standard seeded input.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two of at least 4.
    pub fn new(n: usize) -> Loop2 {
        assert!(
            n.is_power_of_two() && n >= 4,
            "loop 2 needs a power-of-two n >= 4"
        );
        let total = 2 * n + 2;
        Loop2 {
            n,
            x0: input::f64_vec(0x22_01, total, -1.0, 1.0),
            v: input::f64_vec(0x22_02, total, -0.25, 0.25),
        }
    }

    /// Vector length.
    pub fn n(&self) -> usize {
        self.n
    }

    fn total(&self) -> usize {
        2 * self.n + 2
    }

    /// Host reference: the x array after `REPS` applications.
    pub fn reference(&self) -> Vec<f64> {
        let mut x = self.x0.clone();
        for _ in 0..REPS {
            host_step(&mut x, &self.v, self.n);
        }
        x
    }

    /// Emit the arithmetic body shared by both versions: computes
    /// `x[i] = x[k] - v[k]*x[k-1] - v[k+1]*x[k+1]` with `k` in `t4` and `i`
    /// in `t3`; clobbers t0–t2, f0–f2.
    fn emit_element(a: &mut Asm, x: u64, v: u64) {
        a.slli(Reg::T0, Reg::T4, 3);
        a.li(Reg::T1, x as i64);
        a.add(Reg::T1, Reg::T1, Reg::T0); // &x[k]
        a.li(Reg::T2, v as i64);
        a.add(Reg::T2, Reg::T2, Reg::T0); // &v[k]
        a.fld(FReg::F0, Reg::T1, 0); // x[k]
        a.fld(FReg::F1, Reg::T1, -8); // x[k-1]
        a.fld(FReg::F2, Reg::T2, 0); // v[k]
        a.fmul(FReg::F1, FReg::F2, FReg::F1);
        a.fsub(FReg::F0, FReg::F0, FReg::F1);
        a.fld(FReg::F1, Reg::T1, 8); // x[k+1]
        a.fld(FReg::F2, Reg::T2, 8); // v[k+1]
        a.fmul(FReg::F1, FReg::F2, FReg::F1);
        a.fsub(FReg::F0, FReg::F0, FReg::F1);
        a.slli(Reg::T0, Reg::T3, 3);
        a.li(Reg::T1, x as i64);
        a.add(Reg::T1, Reg::T1, Reg::T0);
        a.fst(FReg::F0, Reg::T1, 0); // x[i]
    }

    /// Run the sequential baseline and validate.
    ///
    /// # Errors
    ///
    /// Simulation or validation failures.
    pub fn run_sequential(&self) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(&ExecSpec::sequential(), RunAttachments::default())?
            .outcome)
    }

    /// Run the paper's parallel decomposition and validate.
    ///
    /// # Errors
    ///
    /// Simulation, barrier-setup or validation failures.
    pub fn run_parallel(
        &self,
        threads: usize,
        mechanism: BarrierMechanism,
    ) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(
                &ExecSpec::parallel(threads, mechanism),
                RunAttachments::default(),
            )?
            .outcome)
    }

    /// Run under a full [`ExecSpec`] (threads, mechanism, topology,
    /// engine knobs, seeded faults) with optional in-process
    /// [`RunAttachments`] (trace sinks, observer hooks, hand-built
    /// plans). The output is always validated against the host reference,
    /// and after a faulted run the filter tables must end quiescent
    /// (§3.3.3). Attachments and knobs are digest-invariant.
    ///
    /// # Errors
    ///
    /// Spec, simulation, barrier-setup or validation failures.
    pub fn run_with(
        &self,
        exec: &ExecSpec,
        mut att: RunAttachments<'_>,
    ) -> Result<RunOutput, KernelError> {
        let (mut b, barrier) = KernelBuild::from_exec(exec, &mut att)?;
        let x = b.space.alloc_f64(self.total() as u64)?;
        let v = b.space.alloc_f64(self.total() as u64)?;
        match &barrier {
            Some(bar) => self.emit_parallel_body(&mut b.asm, bar, x, v)?,
            None => emit_rep_loop(&mut b.asm, REPS, |a| {
                a.li(Reg::S0, self.n as i64); // ii
                a.li(Reg::S1, 0); // ipntp
                a.label("stage")?;
                a.mv(Reg::S2, Reg::S1); // ipnt
                a.add(Reg::S1, Reg::S1, Reg::S0);
                a.srai(Reg::S0, Reg::S0, 1);
                a.mv(Reg::T3, Reg::S1); // i = ipntp
                a.addi(Reg::T4, Reg::S2, 1); // k = ipnt + 1
                a.label("k_loop")?;
                a.bge(Reg::T4, Reg::S1, "stage_end");
                a.addi(Reg::T3, Reg::T3, 1);
                Self::emit_element(a, x, v);
                a.addi(Reg::T4, Reg::T4, 2);
                a.j("k_loop");
                a.label("stage_end")?;
                a.li(Reg::T0, 1);
                a.blt(Reg::T0, Reg::S0, "stage");
                Ok(())
            })?,
        }
        let (xs, vs) = (self.x0.clone(), self.v.clone());
        let mut m = b.finish(move |mb| {
            mb.write_f64_slice(x, &xs);
            mb.write_f64_slice(v, &vs);
        })?;
        let (outcome, faults) = run_spec_reps(&mut m, REPS, exec, &att)?;
        check_f64(
            "x",
            &m.read_f64_slice(x, self.total()),
            &self.reference(),
            1e-9,
        )?;
        Ok(RunOutput {
            outcome,
            faults,
            program: m.program().clone(),
        })
    }

    fn emit_parallel_body(
        &self,
        a: &mut Asm,
        barrier: &Barrier,
        x: u64,
        v: u64,
    ) -> Result<(), KernelError> {
        emit_rep_loop(a, REPS, |a| {
            a.li(Reg::S0, self.n as i64); // ii
            a.li(Reg::S1, 0); // ipntp
            a.label("stage")?;
            a.mv(Reg::S2, Reg::S1); // ipnt
            a.add(Reg::S1, Reg::S1, Reg::S0);
            a.srai(Reg::S0, Reg::S0, 1);
            // chunk = max(8, ceil(ceil(len/2) / THREADS))
            a.sub(Reg::T0, Reg::S1, Reg::S2); // len = ipntp - ipnt
            a.andi(Reg::T1, Reg::T0, 1);
            a.srai(Reg::T0, Reg::T0, 1);
            a.add(Reg::T0, Reg::T0, Reg::T1); // nhalf
            a.div(Reg::T1, Reg::T0, Reg::NTID);
            a.rem(Reg::T2, Reg::T0, Reg::NTID);
            a.sltu(Reg::T2, Reg::ZERO, Reg::T2);
            a.add(Reg::T1, Reg::T1, Reg::T2); // chunk
            a.li(Reg::T2, 8);
            a.max(Reg::T1, Reg::T1, Reg::T2);
            // i = ipntp + MYID * chunk
            a.mul(Reg::T2, Reg::TID, Reg::T1);
            a.add(Reg::T3, Reg::S1, Reg::T2);
            // k = ipnt + 1 + MYID * 2 * chunk
            a.slli(Reg::T4, Reg::T2, 1);
            a.add(Reg::T4, Reg::T4, Reg::S2);
            a.addi(Reg::T4, Reg::T4, 1);
            // bound = min(chunk*2*(MYID+1) + ipnt + 1, ipntp)
            a.addi(Reg::T5, Reg::TID, 1);
            a.mul(Reg::T5, Reg::T5, Reg::T1);
            a.slli(Reg::T5, Reg::T5, 1);
            a.add(Reg::T5, Reg::T5, Reg::S2);
            a.addi(Reg::T5, Reg::T5, 1);
            a.min(Reg::T5, Reg::T5, Reg::S1);
            a.label("k_loop")?;
            a.bge(Reg::T4, Reg::T5, "k_done");
            a.addi(Reg::T3, Reg::T3, 1);
            Self::emit_element(a, x, v);
            a.addi(Reg::T4, Reg::T4, 2);
            a.j("k_loop");
            a.label("k_done")?;
            barrier.emit_call(a);
            a.li(Reg::T0, 1);
            a.blt(Reg::T0, Reg::S0, "stage");
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_matches_host() {
        Loop2::new(64).run_sequential().unwrap();
    }

    #[test]
    fn parallel_filter_matches_host() {
        Loop2::new(128)
            .run_parallel(4, BarrierMechanism::FilterD)
            .unwrap();
    }

    #[test]
    fn parallel_sw_matches_host() {
        Loop2::new(64)
            .run_parallel(16, BarrierMechanism::SwCentral)
            .unwrap();
    }

    #[test]
    fn parallelism_halves_per_stage() {
        // n = 16: stages of 8, 4, 2, 1 halved iterations; with 16 threads
        // most threads idle at every stage yet results stay correct.
        Loop2::new(16)
            .run_parallel(16, BarrierMechanism::HwDedicated)
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let _ = Loop2::new(100);
    }
}
