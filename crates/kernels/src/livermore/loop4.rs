//! Livermore Loop 4: banded linear equations.
//!
//! The paper excludes it from the study because "Kernels 3 and 4 are both
//! reductions" — it adds nothing beyond Loop 3's synchronization shape. We
//! include it to demonstrate exactly that: the same partial-sums +
//! reduction decomposition applies unchanged.
//!
//! ```c
//! m = (1001-7)/2;
//! for (k = 6; k < 1001; k += m) {
//!     lw = k - 6;
//!     temp = x[k-1];
//!     for (j = 4; j < n; j += 5) { temp -= x[lw] * y[j]; lw++; }
//!     x[k-1] = y[4] * temp;
//! }
//! ```

use barrier_filter::{Barrier, BarrierMechanism};
use sim_isa::{Asm, FReg, Reg};

use crate::harness::{check_f64, emit_rep_loop, KernelBuild, KernelOutcome, REPS};
use crate::spec::{run_spec_reps, ExecSpec, RunAttachments, RunOutput};
use crate::{input, KernelError};

/// Livermore Loop 4 with inner-reduction length `n` (the `j` loop runs
/// `(n-4)/5` terms).
#[derive(Debug, Clone)]
pub struct Loop4 {
    n: usize,
    x0: Vec<f64>,
    y: Vec<f64>,
}

const K_BASE: usize = 6;

impl Loop4 {
    /// Kernel instance with the standard seeded input.
    ///
    /// # Panics
    ///
    /// Panics if `n < 9`.
    pub fn new(n: usize) -> Loop4 {
        assert!(n >= 9, "loop 4 needs n >= 9");
        let terms = (n - 4).div_ceil(5);
        let m = (1001 - 7) / 2;
        let xlen = (K_BASE + 2 * m - 6 + terms).max(1001);
        Loop4 {
            n,
            x0: input::f64_vec(0x44_01, xlen, -1.0, 1.0),
            y: input::f64_vec(0x44_02, n, -0.1, 0.1),
        }
    }

    /// Inner-reduction parameter.
    pub fn n(&self) -> usize {
        self.n
    }

    fn terms(&self) -> usize {
        (self.n - 4).div_ceil(5)
    }

    fn ks() -> [usize; 2] {
        let m = (1001 - 7) / 2;
        [K_BASE, K_BASE + m]
    }

    /// Host reference (sequential accumulation order, mirrored by both
    /// simulated versions' per-chunk order up to reassociation).
    pub fn reference(&self, chunked: Option<usize>) -> Vec<f64> {
        let mut x = self.x0.clone();
        for _ in 0..REPS {
            for k in Self::ks() {
                let lw0 = k - 6;
                let mut temp = x[k - 1];
                match chunked {
                    None => {
                        for t in 0..self.terms() {
                            temp -= x[lw0 + t] * self.y[4 + 5 * t];
                        }
                    }
                    Some(threads) => {
                        let chunk = self.terms().div_ceil(threads).max(8);
                        for th in 0..threads {
                            let lo = (th * chunk).min(self.terms());
                            let hi = ((th + 1) * chunk).min(self.terms());
                            let mut partial = 0.0;
                            for t in lo..hi {
                                partial += x[lw0 + t] * self.y[4 + 5 * t];
                            }
                            temp -= partial;
                        }
                    }
                }
                x[k - 1] = self.y[4] * temp;
            }
        }
        x
    }

    /// Run the sequential baseline and validate.
    ///
    /// # Errors
    ///
    /// Simulation or validation failures.
    pub fn run_sequential(&self) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(&ExecSpec::sequential(), RunAttachments::default())?
            .outcome)
    }

    /// Run the parallel version — exactly Loop 3's shape: per-`k` parallel
    /// partial sums, a barrier, a reduction on thread 0, a second barrier.
    ///
    /// # Errors
    ///
    /// Simulation, barrier-setup or validation failures.
    pub fn run_parallel(
        &self,
        threads: usize,
        mechanism: BarrierMechanism,
    ) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(
                &ExecSpec::parallel(threads, mechanism),
                RunAttachments::default(),
            )?
            .outcome)
    }

    /// Run under a full [`ExecSpec`] (threads, mechanism, topology,
    /// engine knobs, seeded faults) with optional in-process
    /// [`RunAttachments`] (trace sinks, observer hooks, hand-built
    /// plans). The banded solve is validated against the host reference
    /// in the matching accumulation order; attachments and knobs are
    /// digest-invariant.
    ///
    /// # Errors
    ///
    /// Spec, simulation, barrier-setup or validation failures.
    pub fn run_with(
        &self,
        exec: &ExecSpec,
        mut att: RunAttachments<'_>,
    ) -> Result<RunOutput, KernelError> {
        let (mut b, barrier) = KernelBuild::from_exec(exec, &mut att)?;
        let threads = b.threads;
        let x = b.space.alloc_f64(self.x0.len() as u64)?;
        let y = b.space.alloc_f64(self.y.len() as u64)?;
        let expected = match &barrier {
            Some(bar) => {
                let partials = b.space.alloc_lines(threads as u64)?;
                self.emit_parallel(&mut b.asm, bar, x, y, partials, threads)?;
                self.reference(Some(threads))
            }
            None => {
                let terms = self.terms() as i64;
                emit_rep_loop(&mut b.asm, REPS, |a| {
                    for (ki, k) in Self::ks().into_iter().enumerate() {
                        let xk = x + 8 * (k as u64 - 1);
                        let lw = x + 8 * (k as u64 - 6);
                        let body = format!("k{ki}_loop");
                        a.li(Reg::T0, lw as i64); // &x[lw]
                        a.li(Reg::T1, (y + 32) as i64); // &y[4]
                        a.li(Reg::T2, terms);
                        a.li(Reg::T3, xk as i64);
                        a.fld(FReg::F0, Reg::T3, 0); // temp = x[k-1]
                        a.label(&body)?;
                        a.fld(FReg::F1, Reg::T0, 0);
                        a.fld(FReg::F2, Reg::T1, 0);
                        a.fmul(FReg::F1, FReg::F1, FReg::F2);
                        a.fsub(FReg::F0, FReg::F0, FReg::F1);
                        a.addi(Reg::T0, Reg::T0, 8);
                        a.addi(Reg::T1, Reg::T1, 40);
                        a.addi(Reg::T2, Reg::T2, -1);
                        a.bne(Reg::T2, Reg::ZERO, body.as_str());
                        a.li(Reg::T1, (y + 32) as i64);
                        a.fld(FReg::F2, Reg::T1, 0); // y[4]
                        a.fmul(FReg::F0, FReg::F0, FReg::F2);
                        a.fst(FReg::F0, Reg::T3, 0);
                    }
                    Ok(())
                })?;
                self.reference(None)
            }
        };
        let (xs, ys) = (self.x0.clone(), self.y.clone());
        let mut m = b.finish(move |mb| {
            mb.write_f64_slice(x, &xs);
            mb.write_f64_slice(y, &ys);
        })?;
        let (outcome, faults) = run_spec_reps(&mut m, REPS, exec, &att)?;
        check_f64("x", &m.read_f64_slice(x, self.x0.len()), &expected, 1e-9)?;
        Ok(RunOutput {
            outcome,
            faults,
            program: m.program().clone(),
        })
    }

    fn emit_parallel(
        &self,
        a: &mut Asm,
        barrier: &Barrier,
        x: u64,
        y: u64,
        partials: u64,
        threads: usize,
    ) -> Result<(), KernelError> {
        let chunk = self.terms().div_ceil(threads).max(8) as i64;
        let terms = self.terms() as i64;
        emit_rep_loop(a, REPS, |a| {
            for (ki, k) in Self::ks().into_iter().enumerate() {
                let xk = x + 8 * (k as u64 - 1);
                let lw = x + 8 * (k as u64 - 6);
                let body = format!("k{ki}_loop");
                let store = format!("k{ki}_store");
                let reduce = format!("k{ki}_red");
                let red_loop = format!("k{ki}_red_loop");
                // my range over terms
                a.li(Reg::T0, chunk);
                a.mul(Reg::T1, Reg::TID, Reg::T0); // lo
                a.add(Reg::T2, Reg::T1, Reg::T0);
                a.li(Reg::T3, terms);
                a.min(Reg::T2, Reg::T2, Reg::T3); // hi
                a.fli(FReg::F0, 0.0);
                a.bge(Reg::T1, Reg::T2, store.as_str());
                a.slli(Reg::T4, Reg::T1, 3);
                a.li(Reg::T0, lw as i64);
                a.add(Reg::T0, Reg::T0, Reg::T4); // &x[lw + lo]
                a.li(Reg::T5, 40);
                a.mul(Reg::T5, Reg::T1, Reg::T5);
                a.li(Reg::T4, (y + 32) as i64);
                a.add(Reg::T4, Reg::T4, Reg::T5); // &y[4 + 5*lo]
                a.sub(Reg::T3, Reg::T2, Reg::T1);
                a.label(&body)?;
                a.fld(FReg::F1, Reg::T0, 0);
                a.fld(FReg::F2, Reg::T4, 0);
                a.fmadd(FReg::F0, FReg::F1, FReg::F2, FReg::F0);
                a.addi(Reg::T0, Reg::T0, 8);
                a.addi(Reg::T4, Reg::T4, 40);
                a.addi(Reg::T3, Reg::T3, -1);
                a.bne(Reg::T3, Reg::ZERO, body.as_str());
                a.label(&store)?;
                a.slli(Reg::T4, Reg::TID, 6);
                a.li(Reg::T5, partials as i64);
                a.add(Reg::T5, Reg::T5, Reg::T4);
                a.fst(FReg::F0, Reg::T5, 0);
                barrier.emit_call(a);
                a.bne(Reg::TID, Reg::ZERO, reduce.as_str());
                a.li(Reg::T3, xk as i64);
                a.fld(FReg::F0, Reg::T3, 0); // temp = x[k-1]
                a.li(Reg::T0, partials as i64);
                a.li(Reg::T1, 0);
                a.label(&red_loop)?;
                a.fld(FReg::F1, Reg::T0, 0);
                a.fsub(FReg::F0, FReg::F0, FReg::F1);
                a.addi(Reg::T0, Reg::T0, 64);
                a.addi(Reg::T1, Reg::T1, 1);
                a.blt(Reg::T1, Reg::NTID, red_loop.as_str());
                a.li(Reg::T1, (y + 32) as i64);
                a.fld(FReg::F2, Reg::T1, 0);
                a.fmul(FReg::F0, FReg::F0, FReg::F2);
                a.fst(FReg::F0, Reg::T3, 0);
                a.label(&reduce)?;
                barrier.emit_call(a);
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_matches_host() {
        Loop4::new(200).run_sequential().unwrap();
    }

    #[test]
    fn parallel_matches_host() {
        Loop4::new(400)
            .run_parallel(4, BarrierMechanism::FilterD)
            .unwrap();
    }

    #[test]
    fn parallel_sw_matches_host() {
        Loop4::new(200)
            .run_parallel(8, BarrierMechanism::SwCentral)
            .unwrap();
    }
}
