//! Livermore Loop 1: hydro fragment — the embarrassingly parallel contrast
//! case (§4.4 excludes it from the barrier study precisely because it needs
//! no synchronization; we keep it as a sanity check and example).
//!
//! ```c
//! for (k = 0; k < n; k++) {
//!     x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
//! }
//! ```

use barrier_filter::{Barrier, BarrierMechanism};
use sim_isa::{Asm, FReg, Reg};

use crate::harness::{check_f64, chunk_for, emit_rep_loop, KernelBuild, KernelOutcome, REPS};
use crate::spec::{run_spec_reps, ExecSpec, RunAttachments, RunOutput};
use crate::{input, KernelError};

const Q: f64 = 0.5;
const R: f64 = 0.25;
const T: f64 = 0.125;

/// Livermore Loop 1 at vector length `n`.
#[derive(Debug, Clone)]
pub struct Loop1 {
    n: usize,
    y: Vec<f64>,
    z: Vec<f64>,
}

impl Loop1 {
    /// Kernel instance with the standard seeded input.
    pub fn new(n: usize) -> Loop1 {
        Loop1 {
            n,
            y: input::f64_vec(0x11_01, n, -1.0, 1.0),
            z: input::f64_vec(0x11_02, n + 11, -1.0, 1.0),
        }
    }

    /// Vector length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Host reference.
    pub fn reference(&self) -> Vec<f64> {
        (0..self.n)
            .map(|k| Q + self.y[k] * (R * self.z[k + 10] + T * self.z[k + 11]))
            .collect()
    }

    fn emit_range_body(&self, a: &mut Asm, x: u64, y: u64, z: u64) -> Result<(), KernelError> {
        // On entry: t1 = lo, t2 = hi (t1 < t2). Clobbers t0-t5, f0-f5.
        a.slli(Reg::T4, Reg::T1, 3);
        a.li(Reg::T0, x as i64);
        a.add(Reg::T0, Reg::T0, Reg::T4); // &x[lo]
        a.li(Reg::T3, y as i64);
        a.add(Reg::T3, Reg::T3, Reg::T4); // &y[lo]
        a.li(Reg::T5, (z + 80) as i64);
        a.add(Reg::T5, Reg::T5, Reg::T4); // &z[lo + 10]
        a.sub(Reg::T4, Reg::T2, Reg::T1); // count
        a.fli(FReg::F3, R);
        a.fli(FReg::F4, T);
        a.fli(FReg::F5, Q);
        a.label("k_loop")?;
        a.fld(FReg::F0, Reg::T5, 0); // z[k+10]
        a.fld(FReg::F1, Reg::T5, 8); // z[k+11]
        a.fmul(FReg::F0, FReg::F0, FReg::F3);
        a.fmadd(FReg::F0, FReg::F1, FReg::F4, FReg::F0);
        a.fld(FReg::F2, Reg::T3, 0); // y[k]
        a.fmadd(FReg::F0, FReg::F2, FReg::F0, FReg::F5);
        a.fst(FReg::F0, Reg::T0, 0);
        a.addi(Reg::T0, Reg::T0, 8);
        a.addi(Reg::T3, Reg::T3, 8);
        a.addi(Reg::T5, Reg::T5, 8);
        a.addi(Reg::T4, Reg::T4, -1);
        a.bne(Reg::T4, Reg::ZERO, "k_loop");
        Ok(())
    }

    /// Run the sequential baseline and validate.
    ///
    /// # Errors
    ///
    /// Simulation or validation failures.
    pub fn run_sequential(&self) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(&ExecSpec::sequential(), RunAttachments::default())?
            .outcome)
    }

    /// Run the parallel version: pure chunked distribution, one barrier per
    /// repetition only to keep repetitions from overlapping.
    ///
    /// # Errors
    ///
    /// Simulation, barrier-setup or validation failures.
    pub fn run_parallel(
        &self,
        threads: usize,
        mechanism: BarrierMechanism,
    ) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(
                &ExecSpec::parallel(threads, mechanism),
                RunAttachments::default(),
            )?
            .outcome)
    }

    /// Run under a full [`ExecSpec`] (threads, mechanism, topology,
    /// engine knobs, seeded faults) with optional in-process
    /// [`RunAttachments`] (trace sinks, observer hooks, hand-built
    /// plans). The output vector is always validated against the host
    /// reference; attachments and knobs are digest-invariant.
    ///
    /// # Errors
    ///
    /// Spec, simulation, barrier-setup or validation failures.
    pub fn run_with(
        &self,
        exec: &ExecSpec,
        mut att: RunAttachments<'_>,
    ) -> Result<RunOutput, KernelError> {
        let (mut b, barrier) = KernelBuild::from_exec(exec, &mut att)?;
        let x = b.space.alloc_f64(self.n as u64)?;
        let y = b.space.alloc_f64(self.n as u64)?;
        let z = b.space.alloc_f64(self.n as u64 + 11)?;
        match &barrier {
            Some(bar) => {
                let chunk = chunk_for(self.n, b.threads, 8);
                self.emit_parallel_body(&mut b.asm, bar, x, y, z, chunk)?;
            }
            None => emit_rep_loop(&mut b.asm, REPS, |a| {
                a.li(Reg::T1, 0);
                a.li(Reg::T2, self.n as i64);
                self.emit_range_body(a, x, y, z)
            })?,
        }
        let (ys, zs) = (self.y.clone(), self.z.clone());
        let mut m = b.finish(move |mb| {
            mb.write_f64_slice(y, &ys);
            mb.write_f64_slice(z, &zs);
        })?;
        let (outcome, faults) = run_spec_reps(&mut m, REPS, exec, &att)?;
        check_f64("x", &m.read_f64_slice(x, self.n), &self.reference(), 1e-9)?;
        Ok(RunOutput {
            outcome,
            faults,
            program: m.program().clone(),
        })
    }

    fn emit_parallel_body(
        &self,
        a: &mut Asm,
        barrier: &Barrier,
        x: u64,
        y: u64,
        z: u64,
        chunk: usize,
    ) -> Result<(), KernelError> {
        emit_rep_loop(a, REPS, |a| {
            a.li(Reg::T0, chunk as i64);
            a.mul(Reg::T1, Reg::TID, Reg::T0); // lo
            a.add(Reg::T2, Reg::T1, Reg::T0);
            a.li(Reg::T3, self.n as i64);
            a.min(Reg::T2, Reg::T2, Reg::T3); // hi
            a.bge(Reg::T1, Reg::T2, "chunk_done");
            self.emit_range_body(a, x, y, z)?;
            a.label("chunk_done")?;
            barrier.emit_call(a);
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_matches_host() {
        Loop1::new(64).run_sequential().unwrap();
    }

    #[test]
    fn parallel_matches_host() {
        Loop1::new(256)
            .run_parallel(8, BarrierMechanism::FilterIPingPong)
            .unwrap();
    }

    #[test]
    fn embarrassingly_parallel_speedup_is_large() {
        let k = Loop1::new(2048);
        let seq = k.run_sequential().unwrap();
        let par = k.run_parallel(16, BarrierMechanism::FilterI).unwrap();
        let speedup = seq.cycles_per_rep / par.cycles_per_rep;
        assert!(speedup > 6.0, "speedup {speedup} too small for loop 1");
    }
}
