//! Livermore Loop 5: tridiagonal elimination, below diagonal.
//!
//! ```c
//! for (i = 1; i < n; i++) {
//!     x[i] = z[i] * (y[i] - x[i-1]);
//! }
//! ```
//!
//! Every iteration reads the previous iteration's result: the loop-carried
//! dependence chain makes it **inherently serial**, which is exactly why
//! the paper excludes it ("they are either embarrassingly parallel, such as
//! Kernel 1, or serial, such as Kernels 5 and 20"). We include it as the
//! serial contrast case: there is no `run_parallel`, and
//! [`Loop5::is_parallelizable`] documents why.

use sim_isa::{FReg, Reg};

use crate::harness::{check_f64, emit_rep_loop, KernelBuild, KernelOutcome, REPS};
use crate::spec::{run_spec_reps, ExecSpec, RunAttachments, RunOutput};
use crate::{input, KernelError};

/// Livermore Loop 5 at vector length `n`.
#[derive(Debug, Clone)]
pub struct Loop5 {
    n: usize,
    x0: f64,
    y: Vec<f64>,
    z: Vec<f64>,
}

impl Loop5 {
    /// Kernel instance with the standard seeded input.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Loop5 {
        assert!(n >= 2, "loop 5 needs n >= 2");
        Loop5 {
            n,
            x0: 0.25,
            y: input::f64_vec(0x55_01, n, -1.0, 1.0),
            z: input::f64_vec(0x55_02, n, -0.9, 0.9),
        }
    }

    /// Vector length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// This recurrence cannot be distributed across barriers: each
    /// iteration depends on the one before it. Always `false`.
    pub fn is_parallelizable(&self) -> bool {
        false
    }

    /// Host reference after `REPS` applications (`x[0]` is fixed).
    pub fn reference(&self) -> Vec<f64> {
        let mut x = vec![0.0f64; self.n];
        x[0] = self.x0;
        for _ in 0..REPS {
            for i in 1..self.n {
                x[i] = self.z[i] * (self.y[i] - x[i - 1]);
            }
        }
        x
    }

    /// Run the (only possible) sequential version and validate.
    ///
    /// # Errors
    ///
    /// Simulation or validation failures.
    pub fn run_sequential(&self) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(&ExecSpec::sequential(), RunAttachments::default())?
            .outcome)
    }

    /// Run under a full [`ExecSpec`]. The only accepted shape is
    /// sequential ([`KernelError::Spec`] otherwise — the recurrence is
    /// serial), but engine knobs, seeded faults and attachments all apply
    /// like any other kernel.
    ///
    /// # Errors
    ///
    /// [`KernelError::Spec`] for a parallel spec; simulation or validation
    /// failures otherwise.
    pub fn run_with(
        &self,
        exec: &ExecSpec,
        mut att: RunAttachments<'_>,
    ) -> Result<RunOutput, KernelError> {
        if exec.mechanism.is_some() {
            return Err(KernelError::Spec(
                "loop5 is a serial recurrence; it has no parallel form".into(),
            ));
        }
        let n = self.n;
        let (mut b, _) = KernelBuild::from_exec(exec, &mut att)?;
        let x = b.space.alloc_f64(n as u64)?;
        let y = b.space.alloc_f64(n as u64)?;
        let z = b.space.alloc_f64(n as u64)?;
        emit_rep_loop(&mut b.asm, REPS, |a| {
            a.li(Reg::T0, (x + 8) as i64); // &x[1]
            a.li(Reg::T1, (y + 8) as i64);
            a.li(Reg::T2, (z + 8) as i64);
            a.li(Reg::T3, (n - 1) as i64);
            a.fld(FReg::F0, Reg::T0, -8); // x[0]
            a.label("i_loop")?;
            a.fld(FReg::F1, Reg::T1, 0); // y[i]
            a.fsub(FReg::F1, FReg::F1, FReg::F0);
            a.fld(FReg::F2, Reg::T2, 0); // z[i]
            a.fmul(FReg::F0, FReg::F2, FReg::F1); // x[i] (carried)
            a.fst(FReg::F0, Reg::T0, 0);
            a.addi(Reg::T0, Reg::T0, 8);
            a.addi(Reg::T1, Reg::T1, 8);
            a.addi(Reg::T2, Reg::T2, 8);
            a.addi(Reg::T3, Reg::T3, -1);
            a.bne(Reg::T3, Reg::ZERO, "i_loop");
            Ok(())
        })?;
        let (x0, ys, zs) = (self.x0, self.y.clone(), self.z.clone());
        let mut m = b.finish(move |mb| {
            mb.write_f64(x, x0);
            mb.write_f64_slice(y, &ys);
            mb.write_f64_slice(z, &zs);
        })?;
        let (outcome, faults) = run_spec_reps(&mut m, REPS, exec, &att)?;
        check_f64("x", &m.read_f64_slice(x, n), &self.reference(), 1e-9)?;
        Ok(RunOutput {
            outcome,
            faults,
            program: m.program().clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_matches_host() {
        Loop5::new(128).run_sequential().unwrap();
    }

    #[test]
    fn declared_serial() {
        assert!(!Loop5::new(16).is_parallelizable());
    }

    #[test]
    fn recurrence_really_is_carried() {
        // flipping x[0] changes every element downstream — the dependence
        // chain the paper excludes this kernel for
        let k = Loop5::new(32);
        let mut other = k.clone();
        other.x0 = -0.5;
        let a = k.reference();
        let b = other.reference();
        assert!(a.iter().zip(&b).skip(1).all(|(p, q)| p != q));
    }
}
