//! Livermore Loop 6: general linear recurrence equation (Figure 10).
//!
//! ```c
//! for (i = 1; i < n; i++)
//!     for (k = 0; k < i; k++)
//!         w[i] += b[k][i] * w[(i-k)-1];
//! ```
//!
//! The parallel version is the paper's wavefront transformation: instances
//! with `i - k = t + 1` form a wavefront executable in parallel once
//! timestep `t` is reached, yielding
//!
//! ```c
//! for (t = 0; t <= n-2; t++) {
//!     for (k = MYID*CHUNK; k < (MYID+1)*CHUNK; k++)
//!         if (k < n-t-1) w[t+k+1] += b[k][t+k+1] * w[t];
//!     Barrier();
//! }
//! ```
//!
//! "The parallelism is very fine grained and could not be efficiently
//! exploited on a CMP without fast synchronization … the required
//! synchronizations have an irregular pattern … a global barrier is a
//! natural choice."

use barrier_filter::{Barrier, BarrierMechanism};
use sim_isa::{Asm, FReg, Reg};

use crate::harness::{check_f64, emit_rep_loop, KernelBuild, KernelOutcome, REPS};
use crate::spec::{run_spec_reps, ExecSpec, RunAttachments, RunOutput};
use crate::{input, KernelError};

/// Livermore Loop 6 at vector length `n` (matrix `b` is `n`×`n`).
#[derive(Debug, Clone)]
pub struct Loop6 {
    n: usize,
    w0: Vec<f64>,
    b: Vec<f64>,
}

impl Loop6 {
    /// Kernel instance with the standard seeded input.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Loop6 {
        assert!(n >= 2, "loop 6 needs n >= 2");
        // Scale b like the Netlib kernel does implicitly: keep the
        // recurrence from blowing up over repetitions.
        let scale = 1.0 / n as f64;
        let b = input::f64_vec(0x66_02, n * n, -1.0, 1.0)
            .into_iter()
            .map(|v| v * scale)
            .collect();
        Loop6 {
            n,
            w0: input::f64_vec(0x66_01, n, 0.0, 1.0),
            b,
        }
    }

    /// Vector length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Host reference for the sequential order (`k` ascending within each
    /// `i`) after `REPS` applications.
    pub fn reference_sequential(&self) -> Vec<f64> {
        let n = self.n;
        let mut w = self.w0.clone();
        for _ in 0..REPS {
            for i in 1..n {
                for k in 0..i {
                    w[i] = self.b[k * n + i].mul_add(w[i - k - 1], w[i]);
                }
            }
        }
        w
    }

    /// Host reference for the wavefront order (`t` ascending) after `REPS`
    /// applications.
    pub fn reference_parallel(&self) -> Vec<f64> {
        let n = self.n;
        let mut w = self.w0.clone();
        for _ in 0..REPS {
            for t in 0..n - 1 {
                for k in 0..n - t - 1 {
                    let i = t + k + 1;
                    w[i] = self.b[k * n + i].mul_add(w[t], w[i]);
                }
            }
        }
        w
    }

    /// Run the sequential baseline (original loop order) and validate.
    ///
    /// # Errors
    ///
    /// Simulation or validation failures.
    pub fn run_sequential(&self) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(&ExecSpec::sequential(), RunAttachments::default())?
            .outcome)
    }

    /// Run the paper's wavefront-parallel version and validate.
    ///
    /// # Errors
    ///
    /// Simulation, barrier-setup or validation failures.
    pub fn run_parallel(
        &self,
        threads: usize,
        mechanism: BarrierMechanism,
    ) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(
                &ExecSpec::parallel(threads, mechanism),
                RunAttachments::default(),
            )?
            .outcome)
    }

    /// Run under a full [`ExecSpec`] (threads, mechanism, topology,
    /// engine knobs, seeded faults) with optional in-process
    /// [`RunAttachments`] (trace sinks, observer hooks, hand-built
    /// plans). The recurrence output is validated against the host
    /// reference in the matching evaluation order; attachments and knobs
    /// are digest-invariant.
    ///
    /// # Errors
    ///
    /// Spec, simulation, barrier-setup or validation failures.
    pub fn run_with(
        &self,
        exec: &ExecSpec,
        mut att: RunAttachments<'_>,
    ) -> Result<RunOutput, KernelError> {
        let n = self.n;
        let (mut bld, barrier) = KernelBuild::from_exec(exec, &mut att)?;
        let threads = bld.threads;
        let w = bld.space.alloc_f64(n as u64)?;
        let b = bld.space.alloc_f64((n * n) as u64)?;
        let expected = match &barrier {
            Some(bar) => {
                let chunk = (n - 1).div_ceil(threads);
                self.emit_parallel_body(&mut bld.asm, bar, w, b, chunk)?;
                self.reference_parallel()
            }
            None => {
                emit_rep_loop(&mut bld.asm, REPS, |a| {
                    a.li(Reg::S4, n as i64);
                    a.li(Reg::S3, (n * 8) as i64); // row stride
                    a.li(Reg::S0, 1); // i
                    a.label("i_loop")?;
                    // f0 = w[i]
                    a.slli(Reg::T0, Reg::S0, 3);
                    a.li(Reg::T1, w as i64);
                    a.add(Reg::T1, Reg::T1, Reg::T0); // &w[i]
                    a.fld(FReg::F0, Reg::T1, 0);
                    // b walker: b[0][i]; w walker: w[i-1] stepping down
                    a.li(Reg::T2, b as i64);
                    a.add(Reg::T2, Reg::T2, Reg::T0);
                    a.addi(Reg::T3, Reg::T1, -8);
                    a.mv(Reg::T4, Reg::S0); // count = i
                    a.label("k_loop")?;
                    a.fld(FReg::F1, Reg::T2, 0); // b[k][i]
                    a.fld(FReg::F2, Reg::T3, 0); // w[i-k-1]
                    a.fmadd(FReg::F0, FReg::F1, FReg::F2, FReg::F0);
                    a.add(Reg::T2, Reg::T2, Reg::S3);
                    a.addi(Reg::T3, Reg::T3, -8);
                    a.addi(Reg::T4, Reg::T4, -1);
                    a.bne(Reg::T4, Reg::ZERO, "k_loop");
                    a.fst(FReg::F0, Reg::T1, 0);
                    a.addi(Reg::S0, Reg::S0, 1);
                    a.blt(Reg::S0, Reg::S4, "i_loop");
                    Ok(())
                })?;
                self.reference_sequential()
            }
        };
        let (ws, bs) = (self.w0.clone(), self.b.clone());
        let mut m = bld.finish(move |mb| {
            mb.write_f64_slice(w, &ws);
            mb.write_f64_slice(b, &bs);
        })?;
        let (outcome, faults) = run_spec_reps(&mut m, REPS, exec, &att)?;
        check_f64("w", &m.read_f64_slice(w, n), &expected, 1e-9)?;
        Ok(RunOutput {
            outcome,
            faults,
            program: m.program().clone(),
        })
    }

    fn emit_parallel_body(
        &self,
        a: &mut Asm,
        barrier: &Barrier,
        w: u64,
        b: u64,
        chunk: usize,
    ) -> Result<(), KernelError> {
        let n = self.n;
        emit_rep_loop(a, REPS, |a| {
            a.li(Reg::S4, n as i64);
            a.li(Reg::S3, (n * 8) as i64); // row stride
            a.li(Reg::S2, chunk as i64);
            a.li(Reg::S0, 0); // t
            a.label("t_loop")?;
            // k range: lo = tid*chunk, hi = min(lo+chunk, n-t-1)
            a.mul(Reg::T0, Reg::TID, Reg::S2);
            a.add(Reg::T1, Reg::T0, Reg::S2);
            a.sub(Reg::T2, Reg::S4, Reg::S0);
            a.addi(Reg::T2, Reg::T2, -1); // n - t - 1
            a.min(Reg::T1, Reg::T1, Reg::T2);
            a.bge(Reg::T0, Reg::T1, "stage_done");
            // f3 = w[t]
            a.slli(Reg::T3, Reg::S0, 3);
            a.li(Reg::T4, w as i64);
            a.add(Reg::T4, Reg::T4, Reg::T3);
            a.fld(FReg::F3, Reg::T4, 0);
            // i = t + lo + 1; w walker = &w[i]
            a.add(Reg::T5, Reg::S0, Reg::T0);
            a.addi(Reg::T5, Reg::T5, 1);
            a.slli(Reg::T5, Reg::T5, 3);
            a.li(Reg::T4, w as i64);
            a.add(Reg::T4, Reg::T4, Reg::T5);
            // b walker = &b[lo][i]
            a.mul(Reg::T3, Reg::T0, Reg::S3);
            a.li(Reg::T2, b as i64);
            a.add(Reg::T2, Reg::T2, Reg::T3);
            a.add(Reg::T2, Reg::T2, Reg::T5);
            a.sub(Reg::T3, Reg::T1, Reg::T0); // count
            a.label("k_loop")?;
            a.fld(FReg::F1, Reg::T2, 0); // b[k][i]
            a.fld(FReg::F0, Reg::T4, 0); // w[i]
            a.fmadd(FReg::F0, FReg::F1, FReg::F3, FReg::F0);
            a.fst(FReg::F0, Reg::T4, 0);
            a.addi(Reg::T4, Reg::T4, 8);
            a.add(Reg::T2, Reg::T2, Reg::S3);
            a.addi(Reg::T2, Reg::T2, 8);
            a.addi(Reg::T3, Reg::T3, -1);
            a.bne(Reg::T3, Reg::ZERO, "k_loop");
            a.label("stage_done")?;
            barrier.emit_call(a);
            a.addi(Reg::S0, Reg::S0, 1);
            a.addi(Reg::T0, Reg::S4, -1);
            a.blt(Reg::S0, Reg::T0, "t_loop");
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_matches_host() {
        Loop6::new(32).run_sequential().unwrap();
    }

    #[test]
    fn parallel_filter_matches_host() {
        Loop6::new(48)
            .run_parallel(4, BarrierMechanism::FilterIPingPong)
            .unwrap();
    }

    #[test]
    fn parallel_sw_matches_host() {
        Loop6::new(32)
            .run_parallel(8, BarrierMechanism::SwTree)
            .unwrap();
    }

    #[test]
    fn wavefront_and_original_orders_agree_numerically() {
        let k = Loop6::new(24);
        let a = k.reference_sequential();
        let b = k.reference_parallel();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0));
        }
    }

    #[test]
    fn tiny_n_works() {
        Loop6::new(2)
            .run_parallel(2, BarrierMechanism::HwDedicated)
            .unwrap();
    }
}
