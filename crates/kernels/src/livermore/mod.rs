//! Livermore loop kernels (§4.4).
//!
//! "Livermore loops have long been known for being a tough test for
//! compilers and architectures … these loop kernels help us illustrate how
//! multi-cores equipped with our mechanisms can be a realistic alternative
//! to vector or special-purpose processors."
//!
//! The paper evaluates kernels 2, 3 and 6 and names the others as contrast
//! cases: kernel 1 (hydro) is "embarrassingly parallel", kernel 4 is "a
//! reduction" like kernel 3, and kernel 5 is "serial". All six are here.

mod loop1;
mod loop2;
mod loop3;
mod loop4;
mod loop5;
mod loop6;

pub use loop1::Loop1;
pub use loop2::Loop2;
pub use loop3::Loop3;
pub use loop4::Loop4;
pub use loop5::Loop5;
pub use loop6::Loop6;
