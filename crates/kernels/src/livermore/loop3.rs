//! Livermore Loop 3: inner product (Figure 8).
//!
//! ```c
//! q = 0.0;
//! for (k = 0; k < n; k++) {
//!     q += z[k] * x[k];
//! }
//! ```
//!
//! The parallel version partitions the vectors in chunks of at least eight
//! doubles (one cache line), accumulates per-thread partial sums on private
//! lines, and reduces on thread 0 — two barriers per invocation.

use barrier_filter::{Barrier, BarrierMechanism};
use sim_isa::{Asm, FReg, Reg};

use crate::harness::{check_f64, chunk_for, emit_rep_loop, KernelBuild, KernelOutcome, REPS};
use crate::spec::{run_spec_reps, ExecSpec, RunAttachments, RunOutput};
use crate::{input, KernelError};

/// Livermore Loop 3 at vector length `n`.
#[derive(Debug, Clone)]
pub struct Loop3 {
    n: usize,
    x: Vec<f64>,
    z: Vec<f64>,
}

impl Loop3 {
    /// Kernel instance with the standard seeded input.
    pub fn new(n: usize) -> Loop3 {
        Loop3 {
            n,
            x: input::f64_vec(0x33_01, n, -1.0, 1.0),
            z: input::f64_vec(0x33_02, n, -1.0, 1.0),
        }
    }

    /// Vector length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Host reference in sequential accumulation order.
    pub fn reference_sequential(&self) -> f64 {
        let mut q = 0.0f64;
        for k in 0..self.n {
            q = self.z[k].mul_add(self.x[k], q);
        }
        q
    }

    /// Host reference in the parallel (chunked partials, then reduction)
    /// accumulation order.
    pub fn reference_parallel(&self, threads: usize) -> f64 {
        let chunk = chunk_for(self.n, threads, 8);
        let mut q = 0.0f64;
        for t in 0..threads {
            let lo = (t * chunk).min(self.n);
            let hi = ((t + 1) * chunk).min(self.n);
            let mut partial = 0.0f64;
            for k in lo..hi {
                partial = self.z[k].mul_add(self.x[k], partial);
            }
            q += partial;
        }
        q
    }

    /// Run the sequential baseline and validate the result.
    ///
    /// # Errors
    ///
    /// Simulation or validation failures.
    pub fn run_sequential(&self) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(&ExecSpec::sequential(), RunAttachments::default())?
            .outcome)
    }

    /// Run the paper's parallel version on `threads` cores using
    /// `mechanism`, and validate the result.
    ///
    /// # Errors
    ///
    /// Simulation, barrier-setup or validation failures.
    pub fn run_parallel(
        &self,
        threads: usize,
        mechanism: BarrierMechanism,
    ) -> Result<KernelOutcome, KernelError> {
        Ok(self
            .run_with(
                &ExecSpec::parallel(threads, mechanism),
                RunAttachments::default(),
            )?
            .outcome)
    }

    /// Run under a full [`ExecSpec`] (threads, mechanism, topology,
    /// engine knobs, seeded faults) with optional in-process
    /// [`RunAttachments`] (trace sinks, observer hooks, hand-built
    /// plans). The inner product is validated against the host reference
    /// in the matching accumulation order; attachments and knobs are
    /// digest-invariant.
    ///
    /// # Errors
    ///
    /// Spec, simulation, barrier-setup or validation failures.
    pub fn run_with(
        &self,
        exec: &ExecSpec,
        mut att: RunAttachments<'_>,
    ) -> Result<RunOutput, KernelError> {
        let (mut b, barrier) = KernelBuild::from_exec(exec, &mut att)?;
        let threads = b.threads;
        let x = b.space.alloc_f64(self.n as u64)?;
        let z = b.space.alloc_f64(self.n as u64)?;
        let out;
        let expected;
        match &barrier {
            Some(bar) => {
                let partials = b.space.alloc_lines(threads as u64)?;
                out = b.space.alloc_lines(1)?;
                let chunk = chunk_for(self.n, threads, 8);
                self.emit_parallel_body(&mut b.asm, bar, x, z, partials, out, chunk)?;
                expected = self.reference_parallel(threads);
            }
            None => {
                out = b.space.alloc_lines(1)?;
                emit_rep_loop(&mut b.asm, REPS, |a| {
                    a.fli(FReg::F0, 0.0);
                    a.li(Reg::T0, x as i64);
                    a.li(Reg::T1, z as i64);
                    a.li(Reg::T3, self.n as i64);
                    a.label("k_loop")?;
                    a.fld(FReg::F1, Reg::T1, 0);
                    a.fld(FReg::F2, Reg::T0, 0);
                    a.fmadd(FReg::F0, FReg::F1, FReg::F2, FReg::F0);
                    a.addi(Reg::T0, Reg::T0, 8);
                    a.addi(Reg::T1, Reg::T1, 8);
                    a.addi(Reg::T3, Reg::T3, -1);
                    a.bne(Reg::T3, Reg::ZERO, "k_loop");
                    a.li(Reg::T2, out as i64);
                    a.fst(FReg::F0, Reg::T2, 0);
                    Ok(())
                })?;
                expected = self.reference_sequential();
            }
        }
        let (xs, zs) = (self.x.clone(), self.z.clone());
        let mut m = b.finish(move |mb| {
            mb.write_f64_slice(x, &xs);
            mb.write_f64_slice(z, &zs);
        })?;
        let (outcome, faults) = run_spec_reps(&mut m, REPS, exec, &att)?;
        check_f64("q", &[m.read_f64(out)], &[expected], 1e-9)?;
        Ok(RunOutput {
            outcome,
            faults,
            program: m.program().clone(),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_parallel_body(
        &self,
        a: &mut Asm,
        barrier: &Barrier,
        x: u64,
        z: u64,
        partials: u64,
        out: u64,
        chunk: usize,
    ) -> Result<(), KernelError> {
        let n = self.n as i64;
        emit_rep_loop(a, REPS, |a| {
            // my range: lo = tid * chunk, hi = min(lo + chunk, n)
            a.li(Reg::T0, chunk as i64);
            a.mul(Reg::T1, Reg::TID, Reg::T0); // lo
            a.add(Reg::T2, Reg::T1, Reg::T0);
            a.li(Reg::T3, n);
            a.min(Reg::T2, Reg::T2, Reg::T3); // hi
            a.fli(FReg::F0, 0.0);
            a.bge(Reg::T1, Reg::T2, "chunk_done");
            a.slli(Reg::T4, Reg::T1, 3);
            a.li(Reg::T5, x as i64);
            a.add(Reg::T5, Reg::T5, Reg::T4); // &x[lo]
            a.li(Reg::T0, z as i64);
            a.add(Reg::T0, Reg::T0, Reg::T4); // &z[lo]
            a.sub(Reg::T3, Reg::T2, Reg::T1); // count
            a.label("k_loop")?;
            a.fld(FReg::F1, Reg::T0, 0);
            a.fld(FReg::F2, Reg::T5, 0);
            a.fmadd(FReg::F0, FReg::F1, FReg::F2, FReg::F0);
            a.addi(Reg::T5, Reg::T5, 8);
            a.addi(Reg::T0, Reg::T0, 8);
            a.addi(Reg::T3, Reg::T3, -1);
            a.bne(Reg::T3, Reg::ZERO, "k_loop");
            a.label("chunk_done")?;
            // partials[tid] (one line per thread)
            a.slli(Reg::T4, Reg::TID, 6);
            a.li(Reg::T5, partials as i64);
            a.add(Reg::T5, Reg::T5, Reg::T4);
            a.fst(FReg::F0, Reg::T5, 0);
            barrier.emit_call(a);
            // thread 0 reduces
            a.bne(Reg::TID, Reg::ZERO, "after_reduce");
            a.fli(FReg::F0, 0.0);
            a.li(Reg::T0, partials as i64);
            a.li(Reg::T1, 0);
            a.label("red_loop")?;
            a.fld(FReg::F1, Reg::T0, 0);
            a.fadd(FReg::F0, FReg::F0, FReg::F1);
            a.addi(Reg::T0, Reg::T0, 64);
            a.addi(Reg::T1, Reg::T1, 1);
            a.blt(Reg::T1, Reg::NTID, "red_loop");
            a.li(Reg::T2, out as i64);
            a.fst(FReg::F0, Reg::T2, 0);
            a.label("after_reduce")?;
            barrier.emit_call(a);
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_matches_host() {
        Loop3::new(64).run_sequential().unwrap();
    }

    #[test]
    fn parallel_filter_matches_host() {
        Loop3::new(128)
            .run_parallel(4, BarrierMechanism::FilterD)
            .unwrap();
    }

    #[test]
    fn parallel_software_matches_host() {
        Loop3::new(128)
            .run_parallel(4, BarrierMechanism::SwTree)
            .unwrap();
    }

    #[test]
    fn references_agree_up_to_reassociation() {
        let k = Loop3::new(200);
        let seq = k.reference_sequential();
        let par = k.reference_parallel(16);
        assert!((seq - par).abs() < 1e-9 * seq.abs().max(1.0));
    }

    #[test]
    fn short_vectors_leave_threads_idle_but_work() {
        // n = 16 with 16 threads: only 2 threads get work (chunk floor 8)
        Loop3::new(16)
            .run_parallel(16, BarrierMechanism::HwDedicated)
            .unwrap();
    }
}
