//! Livermore Loop 3: inner product (Figure 8).
//!
//! ```c
//! q = 0.0;
//! for (k = 0; k < n; k++) {
//!     q += z[k] * x[k];
//! }
//! ```
//!
//! The parallel version partitions the vectors in chunks of at least eight
//! doubles (one cache line), accumulates per-thread partial sums on private
//! lines, and reduces on thread 0 — two barriers per invocation.

use barrier_filter::{Barrier, BarrierMechanism};
use cmp_sim::TraceSink;
use sim_isa::{Asm, FReg, Program, Reg};

use crate::harness::{
    check_f64, chunk_for, emit_rep_loop, run_reps, KernelBuild, KernelOutcome, REPS,
};
use crate::{input, KernelError};

/// Livermore Loop 3 at vector length `n`.
#[derive(Debug, Clone)]
pub struct Loop3 {
    n: usize,
    x: Vec<f64>,
    z: Vec<f64>,
}

impl Loop3 {
    /// Kernel instance with the standard seeded input.
    pub fn new(n: usize) -> Loop3 {
        Loop3 {
            n,
            x: input::f64_vec(0x33_01, n, -1.0, 1.0),
            z: input::f64_vec(0x33_02, n, -1.0, 1.0),
        }
    }

    /// Vector length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Host reference in sequential accumulation order.
    pub fn reference_sequential(&self) -> f64 {
        let mut q = 0.0f64;
        for k in 0..self.n {
            q = self.z[k].mul_add(self.x[k], q);
        }
        q
    }

    /// Host reference in the parallel (chunked partials, then reduction)
    /// accumulation order.
    pub fn reference_parallel(&self, threads: usize) -> f64 {
        let chunk = chunk_for(self.n, threads, 8);
        let mut q = 0.0f64;
        for t in 0..threads {
            let lo = (t * chunk).min(self.n);
            let hi = ((t + 1) * chunk).min(self.n);
            let mut partial = 0.0f64;
            for k in lo..hi {
                partial = self.z[k].mul_add(self.x[k], partial);
            }
            q += partial;
        }
        q
    }

    /// Run the sequential baseline and validate the result.
    ///
    /// # Errors
    ///
    /// Simulation or validation failures.
    pub fn run_sequential(&self) -> Result<KernelOutcome, KernelError> {
        let mut b = KernelBuild::sequential();
        let x = b.space.alloc_f64(self.n as u64)?;
        let z = b.space.alloc_f64(self.n as u64)?;
        let out = b.space.alloc_lines(1)?;
        emit_rep_loop(&mut b.asm, REPS, |a| {
            a.fli(FReg::F0, 0.0);
            a.li(Reg::T0, x as i64);
            a.li(Reg::T1, z as i64);
            a.li(Reg::T3, self.n as i64);
            a.label("k_loop")?;
            a.fld(FReg::F1, Reg::T1, 0);
            a.fld(FReg::F2, Reg::T0, 0);
            a.fmadd(FReg::F0, FReg::F1, FReg::F2, FReg::F0);
            a.addi(Reg::T0, Reg::T0, 8);
            a.addi(Reg::T1, Reg::T1, 8);
            a.addi(Reg::T3, Reg::T3, -1);
            a.bne(Reg::T3, Reg::ZERO, "k_loop");
            a.li(Reg::T2, out as i64);
            a.fst(FReg::F0, Reg::T2, 0);
            Ok(())
        })?;
        let (xs, zs) = (self.x.clone(), self.z.clone());
        let mut m = b.finish(move |mb| {
            mb.write_f64_slice(x, &xs);
            mb.write_f64_slice(z, &zs);
        })?;
        let outcome = run_reps(&mut m, REPS)?;
        check_f64(
            "q",
            &[m.read_f64(out)],
            &[self.reference_sequential()],
            1e-9,
        )?;
        Ok(outcome)
    }

    /// Run the paper's parallel version on `threads` cores using
    /// `mechanism`, and validate the result.
    ///
    /// # Errors
    ///
    /// Simulation, barrier-setup or validation failures.
    pub fn run_parallel(
        &self,
        threads: usize,
        mechanism: BarrierMechanism,
    ) -> Result<KernelOutcome, KernelError> {
        Ok(self.run_parallel_observed(threads, mechanism, |_| None)?.0)
    }

    /// [`run_parallel`](Loop3::run_parallel) with a hook that may attach a
    /// trace sink (e.g. a race detector) once the barrier is registered;
    /// the assembled [`Program`] comes back for post-run static analysis.
    /// Sinks are observers: the outcome is bit-identical to the unobserved
    /// run.
    ///
    /// # Errors
    ///
    /// Same as [`run_parallel`](Loop3::run_parallel).
    pub fn run_parallel_observed(
        &self,
        threads: usize,
        mechanism: BarrierMechanism,
        observe: impl FnOnce(&Barrier) -> Option<Box<dyn TraceSink>>,
    ) -> Result<(KernelOutcome, Program), KernelError> {
        let (mut b, barrier) = KernelBuild::parallel(threads, mechanism)?;
        b.sink = observe(&barrier);
        let x = b.space.alloc_f64(self.n as u64)?;
        let z = b.space.alloc_f64(self.n as u64)?;
        let partials = b.space.alloc_lines(threads as u64)?;
        let out = b.space.alloc_lines(1)?;
        let chunk = chunk_for(self.n, threads, 8);
        self.emit_parallel_body(&mut b.asm, &barrier, x, z, partials, out, chunk)?;
        let (xs, zs) = (self.x.clone(), self.z.clone());
        let mut m = b.finish(move |mb| {
            mb.write_f64_slice(x, &xs);
            mb.write_f64_slice(z, &zs);
        })?;
        let outcome = run_reps(&mut m, REPS)?;
        check_f64(
            "q",
            &[m.read_f64(out)],
            &[self.reference_parallel(threads)],
            1e-9,
        )?;
        Ok((outcome, m.program().clone()))
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_parallel_body(
        &self,
        a: &mut Asm,
        barrier: &Barrier,
        x: u64,
        z: u64,
        partials: u64,
        out: u64,
        chunk: usize,
    ) -> Result<(), KernelError> {
        let n = self.n as i64;
        emit_rep_loop(a, REPS, |a| {
            // my range: lo = tid * chunk, hi = min(lo + chunk, n)
            a.li(Reg::T0, chunk as i64);
            a.mul(Reg::T1, Reg::TID, Reg::T0); // lo
            a.add(Reg::T2, Reg::T1, Reg::T0);
            a.li(Reg::T3, n);
            a.min(Reg::T2, Reg::T2, Reg::T3); // hi
            a.fli(FReg::F0, 0.0);
            a.bge(Reg::T1, Reg::T2, "chunk_done");
            a.slli(Reg::T4, Reg::T1, 3);
            a.li(Reg::T5, x as i64);
            a.add(Reg::T5, Reg::T5, Reg::T4); // &x[lo]
            a.li(Reg::T0, z as i64);
            a.add(Reg::T0, Reg::T0, Reg::T4); // &z[lo]
            a.sub(Reg::T3, Reg::T2, Reg::T1); // count
            a.label("k_loop")?;
            a.fld(FReg::F1, Reg::T0, 0);
            a.fld(FReg::F2, Reg::T5, 0);
            a.fmadd(FReg::F0, FReg::F1, FReg::F2, FReg::F0);
            a.addi(Reg::T5, Reg::T5, 8);
            a.addi(Reg::T0, Reg::T0, 8);
            a.addi(Reg::T3, Reg::T3, -1);
            a.bne(Reg::T3, Reg::ZERO, "k_loop");
            a.label("chunk_done")?;
            // partials[tid] (one line per thread)
            a.slli(Reg::T4, Reg::TID, 6);
            a.li(Reg::T5, partials as i64);
            a.add(Reg::T5, Reg::T5, Reg::T4);
            a.fst(FReg::F0, Reg::T5, 0);
            barrier.emit_call(a);
            // thread 0 reduces
            a.bne(Reg::TID, Reg::ZERO, "after_reduce");
            a.fli(FReg::F0, 0.0);
            a.li(Reg::T0, partials as i64);
            a.li(Reg::T1, 0);
            a.label("red_loop")?;
            a.fld(FReg::F1, Reg::T0, 0);
            a.fadd(FReg::F0, FReg::F0, FReg::F1);
            a.addi(Reg::T0, Reg::T0, 64);
            a.addi(Reg::T1, Reg::T1, 1);
            a.blt(Reg::T1, Reg::NTID, "red_loop");
            a.li(Reg::T2, out as i64);
            a.fst(FReg::F0, Reg::T2, 0);
            a.label("after_reduce")?;
            barrier.emit_call(a);
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_matches_host() {
        Loop3::new(64).run_sequential().unwrap();
    }

    #[test]
    fn parallel_filter_matches_host() {
        Loop3::new(128)
            .run_parallel(4, BarrierMechanism::FilterD)
            .unwrap();
    }

    #[test]
    fn parallel_software_matches_host() {
        Loop3::new(128)
            .run_parallel(4, BarrierMechanism::SwTree)
            .unwrap();
    }

    #[test]
    fn references_agree_up_to_reassociation() {
        let k = Loop3::new(200);
        let seq = k.reference_sequential();
        let par = k.reference_parallel(16);
        assert!((seq - par).abs() < 1e-9 * seq.abs().max(1.0));
    }

    #[test]
    fn short_vectors_leave_threads_idle_but_work() {
        // n = 16 with 16 threads: only 2 threads get work (chunk floor 8)
        Loop3::new(16)
            .run_parallel(16, BarrierMechanism::HwDedicated)
            .unwrap();
    }
}
