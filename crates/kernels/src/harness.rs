//! Shared plumbing for building and timing kernel runs.

use barrier_filter::BarrierSystem;
use cmp_sim::{
    run_with_faults, AddressSpace, DecodeCacheStats, EventQueueStats, FaultPlan, FaultReport,
    FusedMemStats, Machine, MachineBuilder, Measurement, SimConfig, TraceConfig, TraceSink,
};
use sim_isa::{Asm, Reg};

use crate::KernelError;

/// Repetitions of a kernel per measured run. The first repetition warms the
/// caches; the reported [`KernelOutcome::cycles_per_rep`] averages over all
/// of them (the paper's methodology runs each loop "many times", so the
/// steady-state cost must dominate cold misses).
pub const REPS: u64 = 24;

/// Result of one validated kernel run: the shared [`Measurement`] record
/// (cycles, instructions, digest, episode metrics) plus the kernel-level
/// per-repetition figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelOutcome {
    /// The simulated-run record shared with every other measurement layer.
    pub sim: Measurement,
    /// Cycles per kernel repetition.
    pub cycles_per_rep: f64,
    /// Decoded-superblock cache counters for the run. Host-side engine
    /// metrics: they vary with
    /// [`SimConfig::decode_cache`](cmp_sim::SimConfig::decode_cache) while
    /// `sim` stays bit-identical, so they live outside [`Measurement`].
    pub decode: DecodeCacheStats,
    /// Sharded-event-queue counters (all zero on the default calendar
    /// queue). Host-side engine metrics, like `decode`.
    pub queue: EventQueueStats,
    /// Memory-op-fused executor counters (all zero when fusion or the
    /// decode cache is off). Host-side engine metrics, like `decode`.
    pub fused: FusedMemStats,
    /// Mean wait on the more contended of the two shared buses
    /// (address/data), in cycles per access — the Figure 4 saturation
    /// signal, reported here so latency-style measurements can be read
    /// straight off a kernel outcome.
    pub bus_mean_wait: f64,
}

/// Optional overrides for the engine fast-path knobs, applied on top of
/// the process defaults when a kernel machine is configured. `None`
/// leaves the corresponding [`SimConfig`] field alone. Every knob is a
/// host-side execution strategy: any combination must leave the kernel's
/// [`Measurement`] — digest included — bit-identical
/// (`bench/tests/determinism.rs` and `throughput --check` hold that
/// line).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineKnobs {
    /// Override for [`SimConfig::burst_budget`], the max events drained
    /// per core visit before re-arbitration.
    pub burst_budget: Option<u32>,
    /// Override for [`SimConfig::decode_cache`].
    pub decode_cache: Option<bool>,
    /// Override for [`SimConfig::event_shards`].
    pub event_shards: Option<bool>,
    /// Override for [`SimConfig::fused_memory`].
    pub fused_memory: Option<bool>,
}

impl EngineKnobs {
    /// Apply the set overrides to `config`.
    pub fn apply(&self, config: &mut SimConfig) {
        if let Some(b) = self.burst_budget {
            config.burst_budget = b;
        }
        if let Some(d) = self.decode_cache {
            config.decode_cache = d;
        }
        if let Some(s) = self.event_shards {
            config.event_shards = s;
        }
        if let Some(f) = self.fused_memory {
            config.fused_memory = f;
        }
    }
}

/// Everything a kernel needs while emitting itself.
pub(crate) struct KernelBuild {
    pub config: SimConfig,
    pub space: AddressSpace,
    pub asm: Asm,
    pub sys: Option<BarrierSystem>,
    /// Trace-sink selection for the built machine (default off). Sinks
    /// are observers: tracing a kernel never changes its outcome.
    pub trace: TraceConfig,
    /// An explicit sink instance to attach (e.g. the race detector);
    /// overrides `trace` when set. Still a pure observer.
    pub sink: Option<Box<dyn TraceSink>>,
    pub threads: usize,
}

impl KernelBuild {
    /// Sequential build: one thread, no barrier system.
    pub fn sequential() -> KernelBuild {
        let config = SimConfig::with_cores(1);
        let space = AddressSpace::new(&config);
        KernelBuild {
            config,
            space,
            asm: Asm::new(),
            sys: None,
            trace: TraceConfig::Off,
            sink: None,
            threads: 1,
        }
    }

    /// Assemble, initialize memory via `init`, add the threads at label
    /// `entry`, and build the machine.
    ///
    /// # Errors
    ///
    /// Assembly or machine-construction failures.
    pub fn finish(self, init: impl FnOnce(&mut MachineBuilder)) -> Result<Machine, KernelError> {
        let program = self.asm.assemble()?;
        let entry = program.require_symbol("entry")?;
        let mut config = self.config;
        config.cycle_limit = 20_000_000_000;
        config.trace = self.trace;
        let mut mb = MachineBuilder::new(config, program)?;
        init(&mut mb);
        if let Some(sink) = self.sink {
            mb.with_trace_sink(sink);
        }
        for _ in 0..self.threads {
            mb.add_thread(entry);
        }
        if let Some(sys) = self.sys {
            sys.install(&mut mb)?;
        }
        Ok(mb.build()?)
    }
}

/// Run a machine for a kernel of `reps` repetitions through a
/// [`FaultPlan`] (possibly empty — an empty plan is bit-identical to a
/// plain run) and require the filter hooks to be quiescent afterwards — the chaos
/// harness's graceful-degradation contract (§3.3.3).
///
/// # Errors
///
/// Propagates simulator errors; [`KernelError::Validation`] if any filter
/// table still holds parked state after the run.
pub(crate) fn run_reps_faulted(
    machine: &mut Machine,
    reps: u64,
    plan: &FaultPlan,
) -> Result<(KernelOutcome, FaultReport), KernelError> {
    let (summary, report) = run_with_faults(machine, plan)?;
    if !machine.hooks_quiescent() {
        return Err(KernelError::Validation(
            "filter tables not quiescent after a faulted run".into(),
        ));
    }
    let stats = machine.stats();
    Ok((
        KernelOutcome {
            sim: Measurement::new(&summary, &stats),
            cycles_per_rep: summary.cycles as f64 / reps as f64,
            decode: machine.decode_stats(),
            queue: machine.queue_stats(),
            fused: machine.fused_stats(),
            bus_mean_wait: stats.addr_bus.mean_wait().max(stats.data_bus.mean_wait()),
        },
        report,
    ))
}

/// Emit the standard repetition wrapper: `s5` counts down `reps`
/// repetitions of the code emitted by `body`. The body must leave `s5`
/// intact. Defines the `entry` label and ends with `halt`.
///
/// # Errors
///
/// Assembler label failures.
pub(crate) fn emit_rep_loop(
    a: &mut Asm,
    reps: u64,
    body: impl FnOnce(&mut Asm) -> Result<(), KernelError>,
) -> Result<(), KernelError> {
    a.label("entry")?;
    a.li(Reg::S5, reps as i64);
    a.label("rep_loop")?;
    body(a)?;
    a.addi(Reg::S5, Reg::S5, -1);
    a.bne(Reg::S5, Reg::ZERO, "rep_loop");
    a.halt();
    Ok(())
}

/// The paper partitions arrays "in chunks of at least 8 doubles, as that is
/// the size of a cache line" (§4.4): elements per thread, floored at one
/// cache line's worth.
pub(crate) fn chunk_for(n: usize, threads: usize, min: usize) -> usize {
    (n.div_ceil(threads)).max(min)
}

/// Compare two f64 slices with a relative tolerance, returning a
/// human-readable mismatch description.
pub(crate) fn check_f64(
    what: &str,
    got: &[f64],
    want: &[f64],
    rel_tol: f64,
) -> Result<(), KernelError> {
    assert_eq!(got.len(), want.len(), "validation length mismatch");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        let scale = w.abs().max(1.0);
        if (g - w).abs() > rel_tol * scale {
            return Err(KernelError::Validation(format!(
                "{what}[{i}] = {g}, expected {w}"
            )));
        }
    }
    Ok(())
}

/// Compare two u64 slices exactly.
pub(crate) fn check_u64(what: &str, got: &[u64], want: &[u64]) -> Result<(), KernelError> {
    assert_eq!(got.len(), want.len(), "validation length mismatch");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        if g != w {
            return Err(KernelError::Validation(format!(
                "{what}[{i}] = {g}, expected {w}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_honours_cache_line_floor() {
        assert_eq!(chunk_for(256, 16, 8), 16);
        assert_eq!(chunk_for(64, 16, 8), 8, "floored at 8 doubles");
        assert_eq!(chunk_for(17, 4, 8), 8);
        assert_eq!(chunk_for(1000, 16, 8), 63);
    }

    #[test]
    fn f64_check_tolerates_rounding() {
        check_f64("x", &[1.0 + 1e-12], &[1.0], 1e-9).unwrap();
        assert!(check_f64("x", &[1.1], &[1.0], 1e-9).is_err());
    }

    #[test]
    fn u64_check_is_exact() {
        check_u64("r", &[5], &[5]).unwrap();
        let err = check_u64("r", &[5], &[6]).unwrap_err();
        assert!(err.to_string().contains("r[0]"));
    }
}
