//! Fine-grained data-parallel kernels for the barrier-filter evaluation.
//!
//! These are the workloads of §4 of the paper, written in MiniRISC assembly
//! from the code the paper prints, each with
//!
//! * a seeded input generator,
//! * a host-Rust reference implementation,
//! * a *sequential* simulated version (the paper's baseline: the same
//!   kernel on a single core, no synchronization), and
//! * the paper's *parallel* decomposition, parameterized by any
//!   [`BarrierMechanism`](barrier_filter::BarrierMechanism),
//!
//! and every simulated run is validated against the host reference before a
//! cycle count is reported.
//!
//! | module | paper workload |
//! |---|---|
//! | [`livermore::Loop1`] | Livermore Kernel 1 (hydro — embarrassingly parallel contrast case) |
//! | [`livermore::Loop2`] | Livermore Kernel 2 (ICCG excerpt), Figure 7 |
//! | [`livermore::Loop3`] | Livermore Kernel 3 (inner product), Figure 8 |
//! | [`livermore::Loop6`] | Livermore Kernel 6 (linear recurrence), Figure 10 |
//! | [`autocorr::Autocorr`] | EEMBC-like fixed-point autocorrelation (lag 32), Figure 5 |
//! | [`viterbi::Viterbi`] | EEMBC-like K=7 rate-1/2 Viterbi decoder, Figure 6 |
//! | [`ocean::OceanProxy`] | §4.1 coarse-grained (SPLASH-2 Ocean-like) contrast case |
//!
//! # Example
//!
//! ```
//! use kernels::livermore::Loop3;
//! use barrier_filter::BarrierMechanism;
//!
//! # fn main() -> Result<(), kernels::KernelError> {
//! let kernel = Loop3::new(256);
//! let seq = kernel.run_sequential()?;
//! let par = kernel.run_parallel(16, BarrierMechanism::FilterI)?;
//! // at vector length 256 the filter barrier clearly beats sequential
//! assert!(par.cycles_per_rep < seq.cycles_per_rep);
//! # Ok(())
//! # }
//! ```

pub mod autocorr;
mod error;
pub mod fig4;
mod harness;
pub mod input;
pub mod livermore;
pub mod ocean;
pub mod spec;
pub mod viterbi;

pub use autocorr::Autocorr;
pub use error::KernelError;
pub use fig4::Fig4;
pub use harness::{EngineKnobs, KernelOutcome, REPS};
pub use ocean::OceanProxy;
pub use spec::{
    run, run_with, ExecSpec, FaultSpec, RunAttachments, RunOutput, RunSpec, WorkloadSpec,
    SPEC_SCHEMA,
};
pub use viterbi::Viterbi;
