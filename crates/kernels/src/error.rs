//! Kernel-harness error type.

use std::fmt;

use barrier_filter::BarrierError;
use cmp_sim::{BuildError, LayoutError, SimError};
use sim_isa::{AsmError, MissingSymbol};

/// Everything that can go wrong while building, running or validating a
/// kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// The simulation aborted.
    Sim(SimError),
    /// Barrier registration/installation failed.
    Barrier(BarrierError),
    /// Machine construction failed.
    Build(BuildError),
    /// Assembly failed.
    Asm(AsmError),
    /// A required entry-point symbol was missing from the program.
    Symbol(MissingSymbol),
    /// Address-space allocation failed.
    Layout(LayoutError),
    /// The simulated output did not match the host reference.
    Validation(String),
    /// A [`RunSpec`](crate::RunSpec) was malformed or inconsistent
    /// (unknown workload, bad sizes, sequential spec with threads, ...).
    /// Spec problems are reported as errors rather than panics so a
    /// daemon can reject a bad wire job without dying.
    Spec(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Sim(e) => write!(f, "simulation failed: {e}"),
            KernelError::Barrier(e) => write!(f, "barrier setup failed: {e}"),
            KernelError::Build(e) => write!(f, "machine build failed: {e}"),
            KernelError::Asm(e) => write!(f, "assembly failed: {e}"),
            KernelError::Symbol(e) => write!(f, "entry resolution failed: {e}"),
            KernelError::Layout(e) => write!(f, "allocation failed: {e}"),
            KernelError::Validation(why) => write!(f, "output validation failed: {why}"),
            KernelError::Spec(why) => write!(f, "bad run spec: {why}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<SimError> for KernelError {
    fn from(e: SimError) -> Self {
        KernelError::Sim(e)
    }
}

impl From<BarrierError> for KernelError {
    fn from(e: BarrierError) -> Self {
        KernelError::Barrier(e)
    }
}

impl From<BuildError> for KernelError {
    fn from(e: BuildError) -> Self {
        KernelError::Build(e)
    }
}

impl From<AsmError> for KernelError {
    fn from(e: AsmError) -> Self {
        KernelError::Asm(e)
    }
}

impl From<LayoutError> for KernelError {
    fn from(e: LayoutError) -> Self {
        KernelError::Layout(e)
    }
}

impl From<MissingSymbol> for KernelError {
    fn from(e: MissingSymbol) -> Self {
        KernelError::Symbol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = KernelError::Validation("w[3] = 1.0, expected 2.0".into());
        assert!(e.to_string().contains("w[3]"));
        let e: KernelError = LayoutError::BarrierRegionFull.into();
        assert!(e.to_string().contains("allocation"));
    }
}
