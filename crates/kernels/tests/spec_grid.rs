//! The RunSpec plumbing grid: every kernel must honour every field of a
//! [`RunSpec`] — no workload may silently ignore engine knobs, seeded
//! faults or observer attachments. Before the spec unification each of
//! these capabilities existed only on the kernels whose legacy variant
//! happened to plumb it (`run_parallel_knobs` on viterbi,
//! `run_parallel_faulted` on loop2/viterbi, `run_parallel_observed` on
//! most but not all); this grid is the regression fence that keeps the
//! unified surface uniform.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use barrier_filter::BarrierMechanism;
use cmp_sim::{TraceEvent, TraceSink};
use kernels::{run, run_with, EngineKnobs, RunAttachments, RunSpec, WorkloadSpec};

/// One spec per parallel-capable workload, small enough to run the whole
/// grid three times (baseline / knobbed / faulted) in one test binary.
fn parallel_grid() -> Vec<RunSpec> {
    vec![
        RunSpec::fig4(BarrierMechanism::FilterD, 4, 8, 2),
        RunSpec::parallel(WorkloadSpec::Loop1 { n: 128 }, 4, BarrierMechanism::FilterI),
        RunSpec::parallel(
            WorkloadSpec::Loop2 { n: 64 },
            4,
            BarrierMechanism::FilterDPingPong,
        ),
        RunSpec::parallel(
            WorkloadSpec::Loop3 { n: 128 },
            4,
            BarrierMechanism::SwCentral,
        ),
        RunSpec::parallel(WorkloadSpec::Loop4 { n: 64 }, 4, BarrierMechanism::SwTree),
        RunSpec::parallel(
            WorkloadSpec::Loop6 { n: 32 },
            4,
            BarrierMechanism::FilterIPingPong,
        ),
        RunSpec::parallel(
            WorkloadSpec::Autocorr { n: 128, lags: 4 },
            4,
            BarrierMechanism::HwDedicated,
        ),
        RunSpec::parallel(
            WorkloadSpec::Viterbi {
                constraint: 5,
                data_bits: 48,
                noise_per_mille: 10,
            },
            4,
            BarrierMechanism::FilterD,
        ),
        RunSpec::parallel(
            WorkloadSpec::Ocean {
                grid: 12,
                sweeps: 2,
            },
            4,
            BarrierMechanism::FilterI,
        ),
    ]
}

/// A sink that only counts events — enough to prove the observer hook was
/// both invoked and attached to the built machine.
struct CountingSink(Arc<AtomicU64>);

impl TraceSink for CountingSink {
    fn record(&mut self, _cycle: u64, _ev: &TraceEvent) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn every_kernel_honours_engine_knobs_and_keeps_its_digest() {
    let knobs = EngineKnobs {
        burst_budget: Some(1),
        decode_cache: Some(false),
        ..EngineKnobs::default()
    };
    for spec in parallel_grid() {
        let kind = spec.workload.kind();
        let base = run(&spec).unwrap();
        assert!(
            base.outcome.decode.hits + base.outcome.decode.builds > 0,
            "{kind}: baseline run should exercise the decode cache"
        );
        let tuned = run(&spec.with_knobs(knobs)).unwrap();
        assert_eq!(
            tuned.outcome.decode.hits + tuned.outcome.decode.builds,
            0,
            "{kind}: decode_cache=false knob was silently ignored"
        );
        assert_eq!(
            base.outcome.sim.stats_digest, tuned.outcome.sim.stats_digest,
            "{kind}: engine knobs must be digest-invariant"
        );
    }
}

#[test]
fn every_kernel_feeds_its_fault_spec_to_the_injector() {
    for spec in parallel_grid() {
        let kind = spec.workload.kind();
        let faulted = spec.with_faults(0x9e37_79b9 ^ spec.digest(), 4, 2_000_000);
        let out = run(&faulted).unwrap();
        assert_eq!(
            out.faults.injected + out.faults.skipped,
            4,
            "{kind}: fault spec was silently ignored ({:?})",
            out.faults
        );
    }
    // The serial contrast case takes the same spec surface.
    let loop5 =
        RunSpec::sequential(WorkloadSpec::Loop5 { n: 64 }).with_faults(0x5e5e, 4, 2_000_000);
    let out = run(&loop5).unwrap();
    assert_eq!(out.faults.injected + out.faults.skipped, 4);
}

#[test]
fn observers_fire_on_every_kernel_without_perturbing_the_digest() {
    for spec in parallel_grid() {
        let kind = spec.workload.kind();
        let base = run(&spec).unwrap();
        let events = Arc::new(AtomicU64::new(0));
        let hooked = Arc::new(AtomicU64::new(0));
        let (ev, hk) = (Arc::clone(&events), Arc::clone(&hooked));
        let out = run_with(
            &spec,
            RunAttachments::observed(move |_barrier| {
                hk.fetch_add(1, Ordering::Relaxed);
                Some(Box::new(CountingSink(ev)))
            }),
        )
        .unwrap();
        assert_eq!(
            hooked.load(Ordering::Relaxed),
            1,
            "{kind}: hook not invoked"
        );
        assert!(
            events.load(Ordering::Relaxed) > 0,
            "{kind}: sink saw no events"
        );
        assert_eq!(
            base.outcome.sim.stats_digest, out.outcome.sim.stats_digest,
            "{kind}: observing a run must not change it"
        );
    }
}

#[test]
fn sequential_runs_accept_knobs_too() {
    let spec = RunSpec::sequential(WorkloadSpec::Loop5 { n: 64 });
    let base = run(&spec).unwrap();
    let tuned = run(&spec.with_knobs(EngineKnobs {
        decode_cache: Some(false),
        ..EngineKnobs::default()
    }))
    .unwrap();
    assert!(base.outcome.decode.hits + base.outcome.decode.builds > 0);
    assert_eq!(tuned.outcome.decode.hits + tuned.outcome.decode.builds, 0);
    assert_eq!(
        base.outcome.sim.stats_digest,
        tuned.outcome.sim.stats_digest
    );
}

#[test]
fn clustered_topology_is_part_of_the_spec_surface() {
    // The 64-core/4-cluster point from the scale sweep; only the
    // hierarchical mechanisms fit a clustered bank granule at this size.
    let spec = RunSpec::fig4(BarrierMechanism::FilterDHier, 64, 8, 2).clustered(4);
    let flat = RunSpec::fig4(BarrierMechanism::FilterDHier, 64, 8, 2);
    assert_ne!(
        spec.digest(),
        flat.digest(),
        "clusters must be cache-relevant"
    );
    let out = run(&spec).unwrap();
    assert!(out.outcome.cycles_per_rep > 0.0);
    // and it round-trips over the wire like every other field
    let back = RunSpec::parse(&spec.canonical_json()).unwrap();
    assert_eq!(back.canonical_json(), spec.canonical_json());
}
