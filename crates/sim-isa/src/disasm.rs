//! Textual form of instructions (`Display`), used by `Program`'s listing and
//! by simulator error reports.

use std::fmt;

use crate::{Instr, MemWidth};

fn width_suffix(w: MemWidth) -> &'static str {
    match w {
        MemWidth::B => "b",
        MemWidth::H => "h",
        MemWidth::W => "w",
        MemWidth::D => "d",
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Add(d, a, b) => write!(f, "add {d}, {a}, {b}"),
            Sub(d, a, b) => write!(f, "sub {d}, {a}, {b}"),
            Mul(d, a, b) => write!(f, "mul {d}, {a}, {b}"),
            Div(d, a, b) => write!(f, "div {d}, {a}, {b}"),
            Rem(d, a, b) => write!(f, "rem {d}, {a}, {b}"),
            And(d, a, b) => write!(f, "and {d}, {a}, {b}"),
            Or(d, a, b) => write!(f, "or {d}, {a}, {b}"),
            Xor(d, a, b) => write!(f, "xor {d}, {a}, {b}"),
            Sll(d, a, b) => write!(f, "sll {d}, {a}, {b}"),
            Srl(d, a, b) => write!(f, "srl {d}, {a}, {b}"),
            Sra(d, a, b) => write!(f, "sra {d}, {a}, {b}"),
            Slt(d, a, b) => write!(f, "slt {d}, {a}, {b}"),
            Sltu(d, a, b) => write!(f, "sltu {d}, {a}, {b}"),
            Min(d, a, b) => write!(f, "min {d}, {a}, {b}"),
            Max(d, a, b) => write!(f, "max {d}, {a}, {b}"),
            Addi(d, a, i) => write!(f, "addi {d}, {a}, {i}"),
            Andi(d, a, i) => write!(f, "andi {d}, {a}, {i}"),
            Ori(d, a, i) => write!(f, "ori {d}, {a}, {i}"),
            Xori(d, a, i) => write!(f, "xori {d}, {a}, {i}"),
            Slli(d, a, s) => write!(f, "slli {d}, {a}, {s}"),
            Srli(d, a, s) => write!(f, "srli {d}, {a}, {s}"),
            Srai(d, a, s) => write!(f, "srai {d}, {a}, {s}"),
            Slti(d, a, i) => write!(f, "slti {d}, {a}, {i}"),
            Li(d, i) => write!(f, "li {d}, {i}"),
            Fadd(d, a, b) => write!(f, "fadd {d}, {a}, {b}"),
            Fsub(d, a, b) => write!(f, "fsub {d}, {a}, {b}"),
            Fmul(d, a, b) => write!(f, "fmul {d}, {a}, {b}"),
            Fdiv(d, a, b) => write!(f, "fdiv {d}, {a}, {b}"),
            Fmadd(d, a, b, c) => write!(f, "fmadd {d}, {a}, {b}, {c}"),
            Fneg(d, a) => write!(f, "fneg {d}, {a}"),
            Fmov(d, a) => write!(f, "fmov {d}, {a}"),
            Fli(d, v) => write!(f, "fli {d}, {v}"),
            Fcvtif(d, a) => write!(f, "fcvt.d.l {d}, {a}"),
            Fcvtfi(d, a) => write!(f, "fcvt.l.d {d}, {a}"),
            Feq(d, a, b) => write!(f, "feq {d}, {a}, {b}"),
            Flt(d, a, b) => write!(f, "flt {d}, {a}, {b}"),
            Fle(d, a, b) => write!(f, "fle {d}, {a}, {b}"),
            Ld(d, b, o, w) => write!(f, "ld{} {d}, {o}({b})", width_suffix(w)),
            St(s, b, o, w) => write!(f, "st{} {s}, {o}({b})", width_suffix(w)),
            Fld(d, b, o) => write!(f, "fld {d}, {o}({b})"),
            Fst(s, b, o) => write!(f, "fst {s}, {o}({b})"),
            Ll(d, b, o) => write!(f, "ll {d}, {o}({b})"),
            Sc(d, s, b, o) => write!(f, "sc {d}, {s}, {o}({b})"),
            Beq(a, b, t) => write!(f, "beq {a}, {b}, {:#x}", t.0),
            Bne(a, b, t) => write!(f, "bne {a}, {b}, {:#x}", t.0),
            Blt(a, b, t) => write!(f, "blt {a}, {b}, {:#x}", t.0),
            Bge(a, b, t) => write!(f, "bge {a}, {b}, {:#x}", t.0),
            Bltu(a, b, t) => write!(f, "bltu {a}, {b}, {:#x}", t.0),
            Bgeu(a, b, t) => write!(f, "bgeu {a}, {b}, {:#x}", t.0),
            Jal(d, t) => write!(f, "jal {d}, {:#x}", t.0),
            Jalr(d, b, o) => write!(f, "jalr {d}, {o}({b})"),
            Sync => f.write_str("sync"),
            Isync => f.write_str("isync"),
            Icbi(b, o) => write!(f, "icbi {o}({b})"),
            Dcbi(b, o) => write!(f, "dcbi {o}({b})"),
            HwBar(id) => write!(f, "hwbar {id}"),
            Halt => f.write_str("halt"),
            Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{FReg, Instr, MemWidth, Reg, Target};

    #[test]
    fn representative_formats() {
        assert_eq!(
            Instr::Add(Reg::T0, Reg::T1, Reg::T2).to_string(),
            "add t0, t1, t2"
        );
        assert_eq!(
            Instr::Ld(Reg::A0, Reg::SP, -8, MemWidth::D).to_string(),
            "ldd a0, -8(sp)"
        );
        assert_eq!(
            Instr::St(Reg::A0, Reg::SP, 16, MemWidth::W).to_string(),
            "stw a0, 16(sp)"
        );
        assert_eq!(
            Instr::Fmadd(FReg::F0, FReg::F1, FReg::F2, FReg::F0).to_string(),
            "fmadd f0, f1, f2, f0"
        );
        assert_eq!(
            Instr::Beq(Reg::T0, Reg::ZERO, Target(0x10040)).to_string(),
            "beq t0, zero, 0x10040"
        );
        assert_eq!(Instr::Icbi(Reg::K0, 0).to_string(), "icbi 0(k0)");
        assert_eq!(Instr::HwBar(3).to_string(), "hwbar 3");
        assert_eq!(Instr::Sync.to_string(), "sync");
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Instr::Nop).is_empty());
    }
}
