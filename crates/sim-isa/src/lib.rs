//! MiniRISC: the instruction set executed by the `cmp-sim` chip-multiprocessor
//! simulator.
//!
//! The paper this repository reproduces ("Exploiting Fine-Grained Data
//! Parallelism with Chip Multiprocessors and Fast Barriers", MICRO 2006)
//! evaluated barrier filters on SMTSim executing Alpha code extended with the
//! PowerPC `ICBI`, `DCBI` and `ISYNC` instructions. We do not have SMTSim or
//! an Alpha toolchain, so this crate defines the closest synthetic
//! equivalent: a 64-bit RISC ISA with
//!
//! * 32 integer registers (`x0` hardwired to zero) and 32 `f64` registers,
//! * load-linked / store-conditional (the Alpha `ldq_l`/`stq_c` pair used by
//!   the paper's software barriers),
//! * `sync` (full memory fence, Alpha `mb` / PowerPC `sync`),
//! * `isync` (discard prefetched instructions, PowerPC `ISYNC`),
//! * `icbi` / `dcbi` (user-mode single-line instruction/data cache block
//!   invalidate, PowerPC `ICBI`/`DCBI`), and
//! * `hwbar`, a dedicated-network barrier instruction modelling the
//!   aggressive Beckmann & Polychronopoulos hardware baseline.
//!
//! Programs are written with the [`Asm`] builder and produce a [`Program`]
//! image that the simulator fetches through its modeled instruction cache
//! (each instruction occupies four bytes of the code region, sixteen per
//! 64-byte line).
//!
//! # Example
//!
//! ```
//! use sim_isa::{Asm, Reg, Program};
//!
//! # fn main() -> Result<(), sim_isa::AsmError> {
//! let mut a = Asm::new();
//! a.li(Reg::T0, 10).li(Reg::T1, 0);
//! a.label("loop")?;
//! a.add(Reg::T1, Reg::T1, Reg::T0);
//! a.addi(Reg::T0, Reg::T0, -1);
//! a.bne(Reg::T0, Reg::ZERO, "loop");
//! a.halt();
//! let program: Program = a.assemble()?;
//! assert_eq!(program.len(), 6);
//! # Ok(())
//! # }
//! ```

mod asm;
mod disasm;
mod instr;
mod parse;
mod program;
mod reg;

pub use asm::{Asm, AsmError, Label};
pub use instr::{Instr, MemRef, MemRefKind, MemWidth, Target};
pub use parse::{parse_asm, ParseAsmError};
pub use program::{MissingSymbol, Program, CODE_BASE, INSTR_BYTES};
pub use reg::{FReg, Reg};

/// Size in bytes of a cache line; fixed across the whole machine model.
///
/// The paper distributes Livermore arrays in chunks of at least eight
/// doubles because "that is the size of a cache line" (§4.4), i.e. 64 bytes.
pub const LINE_BYTES: u64 = 64;

/// Number of instructions that fit in one instruction-cache line.
pub const INSTRS_PER_LINE: u64 = LINE_BYTES / INSTR_BYTES;

/// Round an address down to the start of its cache line.
#[inline]
pub const fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}
