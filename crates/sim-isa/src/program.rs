//! Assembled program images.

use std::collections::BTreeMap;
use std::fmt;

use crate::Instr;

/// Base physical address of the code region.
///
/// Data allocations made by the machine builder start well above this, so
/// code and data never overlap.
pub const CODE_BASE: u64 = 0x1_0000;

/// Bytes occupied by one instruction in the code region.
pub const INSTR_BYTES: u64 = 4;

/// A required symbol was not defined in the program image.
///
/// Returned by [`Program::require_symbol`] so loaders and the static
/// analyzer can report a malformed program instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingSymbol {
    /// The symbol name that was looked up.
    pub name: String,
}

impl fmt::Display for MissingSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program has no symbol named `{}`", self.name)
    }
}

impl std::error::Error for MissingSymbol {}

/// An assembled MiniRISC program: a code image plus its symbol table.
///
/// All threads of a simulation share a single `Program` (the loader points
/// each thread at its entry and sets `tid`/`ntid`), mirroring how the paper's
/// kernels run one binary across all cores.
#[derive(Debug, Clone, Default)]
pub struct Program {
    code: Vec<Instr>,
    symbols: BTreeMap<String, u64>,
}

impl Program {
    pub(crate) fn from_parts(code: Vec<Instr>, symbols: BTreeMap<String, u64>) -> Program {
        Program { code, symbols }
    }

    /// Number of instructions in the image.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the image contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The instruction at program counter `pc`, or `None` if `pc` is outside
    /// the code region or misaligned.
    pub fn fetch(&self, pc: u64) -> Option<Instr> {
        if pc < CODE_BASE || !(pc - CODE_BASE).is_multiple_of(INSTR_BYTES) {
            return None;
        }
        let idx = ((pc - CODE_BASE) / INSTR_BYTES) as usize;
        self.code.get(idx).copied()
    }

    /// The program counter of a label defined during assembly.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// The program counter of a label, as a typed error if it does not
    /// exist. Intended for loaders resolving required entry points and for
    /// the static analyzer, which reports the error as a diagnostic.
    ///
    /// # Errors
    ///
    /// Returns [`MissingSymbol`] if `name` was never defined.
    pub fn require_symbol(&self, name: &str) -> Result<u64, MissingSymbol> {
        self.symbol(name).ok_or_else(|| MissingSymbol {
            name: name.to_owned(),
        })
    }

    /// Iterate over `(pc, instruction)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Instr)> + '_ {
        self.code
            .iter()
            .enumerate()
            .map(|(i, &ins)| (CODE_BASE + i as u64 * INSTR_BYTES, ins))
    }

    /// All symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.symbols.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// First address past the end of the code image.
    pub fn code_end(&self) -> u64 {
        CODE_BASE + self.code.len() as u64 * INSTR_BYTES
    }

    /// Whether the single byte at `addr` falls inside the code region of
    /// this program. `code_end()` itself is outside (the range is
    /// half-open), and an empty program contains no code at all. For
    /// multi-byte accesses use [`overlaps_code`](Program::overlaps_code),
    /// which catches accesses that merely straddle the boundary.
    pub fn contains_code(&self, addr: u64) -> bool {
        (CODE_BASE..self.code_end()).contains(&addr)
    }

    /// Whether the `bytes`-byte access starting at `addr` overlaps the code
    /// region anywhere. Unlike [`contains_code`](Program::contains_code)
    /// (which inspects only the first byte), this flags stores that start
    /// below `CODE_BASE` or just under `code_end()` and spill into code.
    /// A zero-length access overlaps nothing.
    pub fn overlaps_code(&self, addr: u64, bytes: u64) -> bool {
        let end = addr.saturating_add(bytes);
        addr < self.code_end() && end > CODE_BASE
    }
}

impl fmt::Display for Program {
    /// Full disassembly listing with symbolized labels.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let by_pc: BTreeMap<u64, &str> = self
            .symbols
            .iter()
            .map(|(name, &pc)| (pc, name.as_str()))
            .collect();
        for (pc, instr) in self.iter() {
            if let Some(name) = by_pc.get(&pc) {
                writeln!(f, "{name}:")?;
            }
            writeln!(f, "  {pc:#08x}:  {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, Reg};

    fn small() -> Program {
        let mut a = Asm::new();
        a.label("entry").unwrap();
        a.li(Reg::T0, 5);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = small();
        assert!(p.fetch(CODE_BASE).is_some());
        assert!(p.fetch(CODE_BASE + INSTR_BYTES).is_some());
        assert!(p.fetch(CODE_BASE + 2 * INSTR_BYTES).is_none());
        assert!(p.fetch(CODE_BASE - INSTR_BYTES).is_none());
        assert!(p.fetch(CODE_BASE + 1).is_none(), "misaligned pc");
    }

    #[test]
    fn symbols_resolve() {
        let p = small();
        assert_eq!(p.symbol("entry"), Some(CODE_BASE));
        assert_eq!(p.require_symbol("entry"), Ok(CODE_BASE));
        assert_eq!(p.symbol("nope"), None);
    }

    #[test]
    fn require_missing_symbol_is_a_typed_error() {
        let err = small().require_symbol("missing").unwrap_err();
        assert_eq!(err.name, "missing");
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn code_extent() {
        let p = small();
        assert_eq!(p.code_end(), CODE_BASE + 2 * INSTR_BYTES);
        assert!(p.contains_code(CODE_BASE));
        assert!(!p.contains_code(p.code_end()));
        assert!(p.contains_code(p.code_end() - 1));
    }

    #[test]
    fn zero_length_program_edges() {
        let p = Asm::new().assemble().unwrap();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.code_end(), CODE_BASE);
        assert_eq!(p.fetch(CODE_BASE), None);
        assert!(!p.contains_code(CODE_BASE));
        assert!(!p.overlaps_code(CODE_BASE, 8));
        assert_eq!(p.require_symbol("entry").unwrap_err().name, "entry");
    }

    #[test]
    fn overlaps_code_is_width_aware() {
        let p = small(); // two instructions: [CODE_BASE, CODE_BASE + 8)
                         // a store whose first byte is below CODE_BASE but spills into code
        assert!(p.overlaps_code(CODE_BASE - 4, 8));
        assert!(!p.contains_code(CODE_BASE - 4));
        // a store starting just under code_end still overlaps
        assert!(p.overlaps_code(p.code_end() - 1, 8));
        // at or past code_end: clear
        assert!(!p.overlaps_code(p.code_end(), 8));
        // entirely below
        assert!(!p.overlaps_code(CODE_BASE - 8, 8));
        // zero-length access overlaps nothing, even inside the region
        assert!(!p.overlaps_code(CODE_BASE, 0));
        // wrapping access is saturated, not wrapped around
        assert!(!p.overlaps_code(u64::MAX - 2, 8));
    }

    #[test]
    fn display_lists_all_instructions() {
        let p = small();
        let listing = p.to_string();
        assert!(listing.contains("entry:"));
        assert!(listing.contains("halt"));
    }
}
