//! Assembled program images.

use std::collections::BTreeMap;
use std::fmt;

use crate::Instr;

/// Base physical address of the code region.
///
/// Data allocations made by the machine builder start well above this, so
/// code and data never overlap.
pub const CODE_BASE: u64 = 0x1_0000;

/// Bytes occupied by one instruction in the code region.
pub const INSTR_BYTES: u64 = 4;

/// A required symbol was not defined in the program image.
///
/// Returned by [`Program::require_symbol`] so loaders and the static
/// analyzer can report a malformed program instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingSymbol {
    /// The symbol name that was looked up.
    pub name: String,
}

impl fmt::Display for MissingSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program has no symbol named `{}`", self.name)
    }
}

impl std::error::Error for MissingSymbol {}

/// An assembled MiniRISC program: a code image plus its symbol table.
///
/// All threads of a simulation share a single `Program` (the loader points
/// each thread at its entry and sets `tid`/`ntid`), mirroring how the paper's
/// kernels run one binary across all cores.
#[derive(Debug, Clone)]
pub struct Program {
    code: Vec<Instr>,
    symbols: BTreeMap<String, u64>,
    /// FNV-1a fingerprint of `code`, maintained across [`Program::patch`].
    /// Decoded-instruction caches key on `(pc, code digest)`; any image
    /// mutation must change this value so stale decodes cannot be served.
    digest: u64,
}

impl Default for Program {
    fn default() -> Program {
        Program::from_parts(Vec::new(), BTreeMap::new())
    }
}

impl Program {
    pub(crate) fn from_parts(code: Vec<Instr>, symbols: BTreeMap<String, u64>) -> Program {
        let digest = compute_code_digest(&code);
        Program {
            code,
            symbols,
            digest,
        }
    }

    /// Number of instructions in the image.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the image contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The instruction at program counter `pc`, or `None` if `pc` is outside
    /// the code region or misaligned.
    pub fn fetch(&self, pc: u64) -> Option<Instr> {
        if pc < CODE_BASE || !(pc - CODE_BASE).is_multiple_of(INSTR_BYTES) {
            return None;
        }
        let idx = ((pc - CODE_BASE) / INSTR_BYTES) as usize;
        self.code.get(idx).copied()
    }

    /// Replace the instruction at program counter `pc`, returning the old
    /// instruction, or `None` (leaving the image untouched) if `pc` is
    /// outside the code region or misaligned.
    ///
    /// This is the self-modifying-code primitive: the simulator stages
    /// patches and applies them here when the owning cache line is
    /// invalidated (`icbi`), the point at which the architecture makes a
    /// code write visible to instruction fetch. The code digest is
    /// recomputed so decoded-instruction caches keyed on
    /// [`code_digest`](Program::code_digest) observe the change.
    pub fn patch(&mut self, pc: u64, instr: Instr) -> Option<Instr> {
        if pc < CODE_BASE || !(pc - CODE_BASE).is_multiple_of(INSTR_BYTES) {
            return None;
        }
        let idx = ((pc - CODE_BASE) / INSTR_BYTES) as usize;
        let slot = self.code.get_mut(idx)?;
        let old = std::mem::replace(slot, instr);
        self.digest = compute_code_digest(&self.code);
        Some(old)
    }

    /// Order-sensitive FNV-1a fingerprint of the code image. Two programs
    /// with different instruction sequences produce different digests (up
    /// to hash collision); [`patch`](Program::patch) recomputes it. Decoded
    /// superblock caches use `(pc, code_digest)` as their key.
    pub fn code_digest(&self) -> u64 {
        self.digest
    }

    /// The program counter of a label defined during assembly.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// The program counter of a label, as a typed error if it does not
    /// exist. Intended for loaders resolving required entry points and for
    /// the static analyzer, which reports the error as a diagnostic.
    ///
    /// # Errors
    ///
    /// Returns [`MissingSymbol`] if `name` was never defined.
    pub fn require_symbol(&self, name: &str) -> Result<u64, MissingSymbol> {
        self.symbol(name).ok_or_else(|| MissingSymbol {
            name: name.to_owned(),
        })
    }

    /// Iterate over `(pc, instruction)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Instr)> + '_ {
        self.code
            .iter()
            .enumerate()
            .map(|(i, &ins)| (CODE_BASE + i as u64 * INSTR_BYTES, ins))
    }

    /// All symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.symbols.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// First address past the end of the code image.
    pub fn code_end(&self) -> u64 {
        CODE_BASE + self.code.len() as u64 * INSTR_BYTES
    }

    /// Whether the single byte at `addr` falls inside the code region of
    /// this program. `code_end()` itself is outside (the range is
    /// half-open), and an empty program contains no code at all. For
    /// multi-byte accesses use [`overlaps_code`](Program::overlaps_code),
    /// which catches accesses that merely straddle the boundary.
    pub fn contains_code(&self, addr: u64) -> bool {
        (CODE_BASE..self.code_end()).contains(&addr)
    }

    /// Whether the `bytes`-byte access starting at `addr` overlaps the code
    /// region anywhere. Unlike [`contains_code`](Program::contains_code)
    /// (which inspects only the first byte), this flags stores that start
    /// below `CODE_BASE` or just under `code_end()` and spill into code.
    /// A zero-length access overlaps nothing.
    pub fn overlaps_code(&self, addr: u64, bytes: u64) -> bool {
        let end = addr.saturating_add(bytes);
        addr < self.code_end() && end > CODE_BASE
    }
}

/// Order-sensitive FNV-1a hash over the textual form of each instruction
/// (index-tagged, so swapped instructions hash differently). The textual
/// form is injective enough for cache keying: any visible difference
/// between two instructions produces different text, and the digest only
/// needs to *change* when the image changes.
fn compute_code_digest(code: &[Instr]) -> u64 {
    use std::fmt::Write;
    struct Fnv(u64);
    impl Write for Fnv {
        fn write_str(&mut self, s: &str) -> fmt::Result {
            for &b in s.as_bytes() {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
            Ok(())
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    for (i, instr) in code.iter().enumerate() {
        let _ = write!(h, "{i}:{instr};");
    }
    h.0
}

impl fmt::Display for Program {
    /// Full disassembly listing with symbolized labels.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let by_pc: BTreeMap<u64, &str> = self
            .symbols
            .iter()
            .map(|(name, &pc)| (pc, name.as_str()))
            .collect();
        for (pc, instr) in self.iter() {
            if let Some(name) = by_pc.get(&pc) {
                writeln!(f, "{name}:")?;
            }
            writeln!(f, "  {pc:#08x}:  {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, Reg};

    fn small() -> Program {
        let mut a = Asm::new();
        a.label("entry").unwrap();
        a.li(Reg::T0, 5);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = small();
        assert!(p.fetch(CODE_BASE).is_some());
        assert!(p.fetch(CODE_BASE + INSTR_BYTES).is_some());
        assert!(p.fetch(CODE_BASE + 2 * INSTR_BYTES).is_none());
        assert!(p.fetch(CODE_BASE - INSTR_BYTES).is_none());
        assert!(p.fetch(CODE_BASE + 1).is_none(), "misaligned pc");
    }

    #[test]
    fn symbols_resolve() {
        let p = small();
        assert_eq!(p.symbol("entry"), Some(CODE_BASE));
        assert_eq!(p.require_symbol("entry"), Ok(CODE_BASE));
        assert_eq!(p.symbol("nope"), None);
    }

    #[test]
    fn require_missing_symbol_is_a_typed_error() {
        let err = small().require_symbol("missing").unwrap_err();
        assert_eq!(err.name, "missing");
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn code_extent() {
        let p = small();
        assert_eq!(p.code_end(), CODE_BASE + 2 * INSTR_BYTES);
        assert!(p.contains_code(CODE_BASE));
        assert!(!p.contains_code(p.code_end()));
        assert!(p.contains_code(p.code_end() - 1));
    }

    #[test]
    fn zero_length_program_edges() {
        let p = Asm::new().assemble().unwrap();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.code_end(), CODE_BASE);
        assert_eq!(p.fetch(CODE_BASE), None);
        assert!(!p.contains_code(CODE_BASE));
        assert!(!p.overlaps_code(CODE_BASE, 8));
        assert_eq!(p.require_symbol("entry").unwrap_err().name, "entry");
    }

    #[test]
    fn overlaps_code_is_width_aware() {
        let p = small(); // two instructions: [CODE_BASE, CODE_BASE + 8)
                         // a store whose first byte is below CODE_BASE but spills into code
        assert!(p.overlaps_code(CODE_BASE - 4, 8));
        assert!(!p.contains_code(CODE_BASE - 4));
        // a store starting just under code_end still overlaps
        assert!(p.overlaps_code(p.code_end() - 1, 8));
        // at or past code_end: clear
        assert!(!p.overlaps_code(p.code_end(), 8));
        // entirely below
        assert!(!p.overlaps_code(CODE_BASE - 8, 8));
        // zero-length access overlaps nothing, even inside the region
        assert!(!p.overlaps_code(CODE_BASE, 0));
        // wrapping access is saturated, not wrapped around
        assert!(!p.overlaps_code(u64::MAX - 2, 8));
    }

    #[test]
    fn patch_replaces_instruction_and_changes_digest() {
        let mut p = small();
        let before = p.code_digest();
        let old = p.patch(CODE_BASE, Instr::Nop).unwrap();
        assert_eq!(old, Instr::Li(Reg::T0, 5));
        assert_eq!(p.fetch(CODE_BASE), Some(Instr::Nop));
        assert_ne!(p.code_digest(), before, "patch must change the digest");

        // Patching back restores the original digest (pure function of the
        // image).
        p.patch(CODE_BASE, old).unwrap();
        assert_eq!(p.code_digest(), before);
    }

    #[test]
    fn patch_rejects_out_of_range_and_misaligned_pcs() {
        let mut p = small();
        let digest = p.code_digest();
        assert_eq!(p.patch(CODE_BASE - INSTR_BYTES, Instr::Nop), None);
        assert_eq!(p.patch(CODE_BASE + 1, Instr::Nop), None);
        assert_eq!(p.patch(p.code_end(), Instr::Nop), None);
        assert_eq!(p.code_digest(), digest, "failed patches leave the image");
    }

    #[test]
    fn digest_distinguishes_programs_and_instruction_order() {
        let two = |a: i64, b: i64| {
            let mut asm = Asm::new();
            asm.li(Reg::T0, a).li(Reg::T1, b).halt();
            asm.assemble().unwrap()
        };
        assert_eq!(two(1, 2).code_digest(), two(1, 2).code_digest());
        assert_ne!(two(1, 2).code_digest(), two(2, 1).code_digest());
        assert_ne!(
            small().code_digest(),
            Program::default().code_digest(),
            "empty program must not collide with a real one"
        );
    }

    #[test]
    fn display_lists_all_instructions() {
        let p = small();
        let listing = p.to_string();
        assert!(listing.contains("entry:"));
        assert!(listing.contains("halt"));
    }
}
