//! Integer and floating-point register names.

use std::fmt;

/// One of the 32 integer registers.
///
/// `x0` ([`Reg::ZERO`]) is hardwired to zero: writes are discarded, reads
/// return 0. The remaining registers are general purpose, but the runtime
/// convention used by the barrier library and the kernels is:
///
/// | register | alias | use |
/// |---|---|---|
/// | x0 | `ZERO` | constant zero |
/// | x1 | `RA` | return address (`jal`/`jalr` link) |
/// | x2 | `SP` | stack pointer |
/// | x3 | `TLS` | thread-local storage base |
/// | x4–x11 | `A0`–`A7` | arguments / kernel parameters |
/// | x12–x21 | `T0`–`T9` | caller-saved temporaries |
/// | x22–x27 | `S0`–`S5` | callee-saved |
/// | x28–x29 | `K0`–`K1` | reserved for the barrier runtime |
/// | x30 | `TID` | thread id (set by the loader) |
/// | x31 | `NTID` | number of threads (set by the loader) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Constant-zero register (x0).
    pub const ZERO: Reg = Reg(0);
    /// Return-address register (x1).
    pub const RA: Reg = Reg(1);
    /// Stack pointer (x2).
    pub const SP: Reg = Reg(2);
    /// Thread-local storage base (x3).
    pub const TLS: Reg = Reg(3);
    /// Argument register 0 (x4).
    pub const A0: Reg = Reg(4);
    /// Argument register 1 (x5).
    pub const A1: Reg = Reg(5);
    /// Argument register 2 (x6).
    pub const A2: Reg = Reg(6);
    /// Argument register 3 (x7).
    pub const A3: Reg = Reg(7);
    /// Argument register 4 (x8).
    pub const A4: Reg = Reg(8);
    /// Argument register 5 (x9).
    pub const A5: Reg = Reg(9);
    /// Argument register 6 (x10).
    pub const A6: Reg = Reg(10);
    /// Argument register 7 (x11).
    pub const A7: Reg = Reg(11);
    /// Temporary 0 (x12).
    pub const T0: Reg = Reg(12);
    /// Temporary 1 (x13).
    pub const T1: Reg = Reg(13);
    /// Temporary 2 (x14).
    pub const T2: Reg = Reg(14);
    /// Temporary 3 (x15).
    pub const T3: Reg = Reg(15);
    /// Temporary 4 (x16).
    pub const T4: Reg = Reg(16);
    /// Temporary 5 (x17).
    pub const T5: Reg = Reg(17);
    /// Temporary 6 (x18).
    pub const T6: Reg = Reg(18);
    /// Temporary 7 (x19).
    pub const T7: Reg = Reg(19);
    /// Temporary 8 (x20).
    pub const T8: Reg = Reg(20);
    /// Temporary 9 (x21).
    pub const T9: Reg = Reg(21);
    /// Saved register 0 (x22).
    pub const S0: Reg = Reg(22);
    /// Saved register 1 (x23).
    pub const S1: Reg = Reg(23);
    /// Saved register 2 (x24).
    pub const S2: Reg = Reg(24);
    /// Saved register 3 (x25).
    pub const S3: Reg = Reg(25);
    /// Saved register 4 (x26).
    pub const S4: Reg = Reg(26);
    /// Saved register 5 (x27).
    pub const S5: Reg = Reg(27);
    /// Barrier-runtime reserved register 0 (x28).
    pub const K0: Reg = Reg(28);
    /// Barrier-runtime reserved register 1 (x29).
    pub const K1: Reg = Reg(29);
    /// Thread id, set by the loader (x30).
    pub const TID: Reg = Reg(30);
    /// Thread count, set by the loader (x31).
    pub const NTID: Reg = Reg(31);

    /// Number of integer registers.
    pub const COUNT: usize = 32;

    /// Construct a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub const fn new(index: u8) -> Reg {
        assert!(index < 32, "integer register index out of range");
        Reg(index)
    }

    /// The register's index in the register file (0–31).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "tls", "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "t0", "t1",
            "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "s0", "s1", "s2", "s3", "s4", "s5",
            "k0", "k1", "tid", "ntid",
        ];
        f.write_str(NAMES[self.0 as usize])
    }
}

/// One of the 32 double-precision floating-point registers (`f0`–`f31`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// f0 — conventionally the primary FP accumulator / return value.
    pub const F0: FReg = FReg(0);
    /// f1.
    pub const F1: FReg = FReg(1);
    /// f2.
    pub const F2: FReg = FReg(2);
    /// f3.
    pub const F3: FReg = FReg(3);
    /// f4.
    pub const F4: FReg = FReg(4);
    /// f5.
    pub const F5: FReg = FReg(5);
    /// f6.
    pub const F6: FReg = FReg(6);
    /// f7.
    pub const F7: FReg = FReg(7);
    /// f8.
    pub const F8: FReg = FReg(8);
    /// f9.
    pub const F9: FReg = FReg(9);
    /// f10.
    pub const F10: FReg = FReg(10);
    /// f11.
    pub const F11: FReg = FReg(11);

    /// Number of floating-point registers.
    pub const COUNT: usize = 32;

    /// Construct a floating-point register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub const fn new(index: u8) -> FReg {
        assert!(index < 32, "fp register index out of range");
        FReg(index)
    }

    /// The register's index in the register file (0–31).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_map_to_expected_indices() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::RA.index(), 1);
        assert_eq!(Reg::TLS.index(), 3);
        assert_eq!(Reg::A0.index(), 4);
        assert_eq!(Reg::T0.index(), 12);
        assert_eq!(Reg::S0.index(), 22);
        assert_eq!(Reg::K0.index(), 28);
        assert_eq!(Reg::TID.index(), 30);
        assert_eq!(Reg::NTID.index(), 31);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::T3.to_string(), "t3");
        assert_eq!(Reg::NTID.to_string(), "ntid");
        assert_eq!(FReg::F7.to_string(), "f7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_reg_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::RA.is_zero());
    }
}
