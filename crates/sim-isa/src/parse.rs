//! Text-format assembly parser: the inverse of the `Display`-based
//! disassembler, so kernels can also be written as `.s`-style source
//! strings and listings round-trip.
//!
//! ```text
//! entry:
//!     li   t0, 10        ; comments with ';' or '#'
//! loop:
//!     addi t0, t0, -1
//!     bne  t0, zero, loop
//!     halt
//! ```
//!
//! # Example
//!
//! ```
//! use sim_isa::parse_asm;
//!
//! let program = parse_asm("
//!     entry:
//!         li t0, 3
//!     spin:
//!         addi t0, t0, -1
//!         bne t0, zero, spin
//!         halt
//! ").unwrap();
//! assert_eq!(program.len(), 4);
//! assert!(program.symbol("spin").is_some());
//! ```

use std::fmt;

use crate::{Asm, AsmError, FReg, Label, MemWidth, Program, Reg};

/// A parse failure, with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

impl From<AsmError> for ParseAsmError {
    fn from(e: AsmError) -> ParseAsmError {
        ParseAsmError {
            line: 0,
            message: e.to_string(),
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseAsmError {
    ParseAsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseAsmError> {
    const NAMES: [&str; 32] = [
        "zero", "ra", "sp", "tls", "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "t0", "t1",
        "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "s0", "s1", "s2", "s3", "s4", "s5", "k0",
        "k1", "tid", "ntid",
    ];
    if let Some(i) = NAMES.iter().position(|&n| n == tok) {
        return Ok(Reg::new(i as u8));
    }
    if let Some(num) = tok.strip_prefix('x') {
        if let Ok(i) = num.parse::<u8>() {
            if i < 32 {
                return Ok(Reg::new(i));
            }
        }
    }
    Err(err(line, format!("unknown integer register `{tok}`")))
}

fn parse_freg(tok: &str, line: usize) -> Result<FReg, ParseAsmError> {
    if let Some(num) = tok.strip_prefix('f') {
        if let Ok(i) = num.parse::<u8>() {
            if i < 32 {
                return Ok(FReg::new(i));
            }
        }
    }
    Err(err(line, format!("unknown fp register `{tok}`")))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseAsmError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let bad = || err(line, format!("bad immediate `{tok}`"));
    // Parse the magnitude in i128 so `i64::MIN` (whose magnitude does not
    // fit in i64) round-trips; unsigned hex up to u64::MAX is accepted and
    // reinterpreted as two's-complement (addresses print that way).
    let magnitude = if let Some(hex) = body.strip_prefix("0x") {
        i128::from_str_radix(hex, 16).map_err(|_| bad())?
    } else {
        body.parse::<i128>().map_err(|_| bad())?
    };
    let value = if neg { -magnitude } else { magnitude };
    if let Ok(v) = i64::try_from(value) {
        return Ok(v);
    }
    if !neg && body.starts_with("0x") {
        if let Ok(v) = u64::try_from(value) {
            return Ok(v as i64);
        }
    }
    Err(bad())
}

/// A branch/jump target operand: a `0x…` absolute program counter (the form
/// the disassembler prints) or a symbolic label name.
fn parse_target(tok: &str, line: usize) -> Result<Label, ParseAsmError> {
    if let Some(hex) = tok.strip_prefix("0x") {
        let pc = u64::from_str_radix(hex, 16)
            .map_err(|_| err(line, format!("bad target address `{tok}`")))?;
        return Ok(Label::Pc(pc));
    }
    Ok(Label::Name(tok.to_owned()))
}

fn parse_fimm(tok: &str, line: usize) -> Result<f64, ParseAsmError> {
    tok.parse::<f64>()
        .map_err(|_| err(line, format!("bad float immediate `{tok}`")))
}

/// Split `off(base)` into `(offset, base-register)`.
fn parse_mem(tok: &str, line: usize) -> Result<(i64, Reg), ParseAsmError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected `off(base)`, got `{tok}`")))?;
    let close = tok
        .strip_suffix(')')
        .ok_or_else(|| err(line, format!("missing `)` in `{tok}`")))?;
    let off_str = &tok[..open];
    let base = parse_reg(&close[open + 1..], line)?;
    let off = if off_str.is_empty() {
        0
    } else {
        parse_imm(off_str, line)?
    };
    Ok((off, base))
}

/// Parse an assembly source string into a [`Program`].
///
/// Supported syntax: one instruction or `name:` label per line; operands
/// separated by commas; `;` or `#` start a comment; every mnemonic the
/// disassembler prints plus the pseudo-ops `mv`, `j`, `ret` and the
/// `.align_line` directive. Branch/jump targets are label names or `0x…`
/// absolute program counters (the form the disassembler prints), so
/// listings re-parse without symbolization.
///
/// # Errors
///
/// [`ParseAsmError`] with the offending line, or a relabelled
/// [`AsmError`] (duplicate/undefined labels).
pub fn parse_asm(source: &str) -> Result<Program, ParseAsmError> {
    let mut a = Asm::new();
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let code = raw.split([';', '#']).next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        if let Some(name) = code.strip_suffix(':') {
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(err(lineno, "bad label"));
            }
            a.label(name)
                .map_err(|e| err(lineno, e.to_string()))
                .map(|_| ())?;
            continue;
        }
        let (mnemonic, rest) = match code.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (code, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let need = |n: usize| -> Result<(), ParseAsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    lineno,
                    format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };
        let r = |i: usize| parse_reg(ops[i], lineno);
        let fr = |i: usize| parse_freg(ops[i], lineno);
        let imm = |i: usize| parse_imm(ops[i], lineno);
        match mnemonic {
            // register-register ALU
            "add" | "sub" | "mul" | "div" | "rem" | "and" | "or" | "xor" | "sll" | "srl"
            | "sra" | "slt" | "sltu" | "min" | "max" => {
                need(3)?;
                let (d, x, y) = (r(0)?, r(1)?, r(2)?);
                match mnemonic {
                    "add" => a.add(d, x, y),
                    "sub" => a.sub(d, x, y),
                    "mul" => a.mul(d, x, y),
                    "div" => a.div(d, x, y),
                    "rem" => a.rem(d, x, y),
                    "and" => a.and(d, x, y),
                    "or" => a.or(d, x, y),
                    "xor" => a.xor(d, x, y),
                    "sll" => a.sll(d, x, y),
                    "srl" => a.srl(d, x, y),
                    "sra" => a.sra(d, x, y),
                    "slt" => a.slt(d, x, y),
                    "sltu" => a.sltu(d, x, y),
                    "min" => a.min(d, x, y),
                    _ => a.max(d, x, y),
                };
            }
            // register-immediate ALU
            "addi" | "andi" | "ori" | "xori" | "slti" => {
                need(3)?;
                let (d, x, i) = (r(0)?, r(1)?, imm(2)?);
                match mnemonic {
                    "addi" => a.addi(d, x, i),
                    "andi" => a.andi(d, x, i),
                    "ori" => a.ori(d, x, i),
                    "xori" => a.xori(d, x, i),
                    _ => a.slti(d, x, i),
                };
            }
            "slli" | "srli" | "srai" => {
                need(3)?;
                let (d, x, i) = (r(0)?, r(1)?, imm(2)?);
                let sh = u8::try_from(i).map_err(|_| err(lineno, "shift amount out of range"))?;
                match mnemonic {
                    "slli" => a.slli(d, x, sh),
                    "srli" => a.srli(d, x, sh),
                    _ => a.srai(d, x, sh),
                };
            }
            "li" => {
                need(2)?;
                let d = r(0)?;
                let i = imm(1)?;
                a.li(d, i);
            }
            "mv" => {
                need(2)?;
                let (d, x) = (r(0)?, r(1)?);
                a.mv(d, x);
            }
            // floating point
            "fadd" | "fsub" | "fmul" | "fdiv" => {
                need(3)?;
                let (d, x, y) = (fr(0)?, fr(1)?, fr(2)?);
                match mnemonic {
                    "fadd" => a.fadd(d, x, y),
                    "fsub" => a.fsub(d, x, y),
                    "fmul" => a.fmul(d, x, y),
                    _ => a.fdiv(d, x, y),
                };
            }
            "fmadd" => {
                need(4)?;
                a.fmadd(fr(0)?, fr(1)?, fr(2)?, fr(3)?);
            }
            "fneg" | "fmov" => {
                need(2)?;
                let (d, x) = (fr(0)?, fr(1)?);
                if mnemonic == "fneg" {
                    a.fneg(d, x)
                } else {
                    a.fmov(d, x)
                };
            }
            "fli" => {
                need(2)?;
                let d = fr(0)?;
                let v = parse_fimm(ops[1], lineno)?;
                a.fli(d, v);
            }
            "fcvt.d.l" => {
                need(2)?;
                a.fcvtif(fr(0)?, r(1)?);
            }
            "fcvt.l.d" => {
                need(2)?;
                a.fcvtfi(r(0)?, fr(1)?);
            }
            "feq" | "flt" | "fle" => {
                need(3)?;
                let (d, x, y) = (r(0)?, fr(1)?, fr(2)?);
                match mnemonic {
                    "feq" => a.feq(d, x, y),
                    "flt" => a.flt(d, x, y),
                    _ => a.fle(d, x, y),
                };
            }
            // memory
            "ldb" | "ldh" | "ldw" | "ldd" => {
                need(2)?;
                let d = r(0)?;
                let (off, base) = parse_mem(ops[1], lineno)?;
                let w = match mnemonic {
                    "ldb" => MemWidth::B,
                    "ldh" => MemWidth::H,
                    "ldw" => MemWidth::W,
                    _ => MemWidth::D,
                };
                a.ld(d, base, off, w);
            }
            "stb" | "sth" | "stw" | "std" => {
                need(2)?;
                let s = r(0)?;
                let (off, base) = parse_mem(ops[1], lineno)?;
                let w = match mnemonic {
                    "stb" => MemWidth::B,
                    "sth" => MemWidth::H,
                    "stw" => MemWidth::W,
                    _ => MemWidth::D,
                };
                a.st(s, base, off, w);
            }
            "fld" => {
                need(2)?;
                let d = fr(0)?;
                let (off, base) = parse_mem(ops[1], lineno)?;
                a.fld(d, base, off);
            }
            "fst" => {
                need(2)?;
                let s = fr(0)?;
                let (off, base) = parse_mem(ops[1], lineno)?;
                a.fst(s, base, off);
            }
            "ll" => {
                need(2)?;
                let d = r(0)?;
                let (off, base) = parse_mem(ops[1], lineno)?;
                a.ll(d, base, off);
            }
            "sc" => {
                need(3)?;
                let (d, s) = (r(0)?, r(1)?);
                let (off, base) = parse_mem(ops[2], lineno)?;
                a.sc(d, s, base, off);
            }
            // control flow
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                need(3)?;
                let (x, y) = (r(0)?, r(1)?);
                let target = parse_target(ops[2], lineno)?;
                match mnemonic {
                    "beq" => a.beq(x, y, target),
                    "bne" => a.bne(x, y, target),
                    "blt" => a.blt(x, y, target),
                    "bge" => a.bge(x, y, target),
                    "bltu" => a.bltu(x, y, target),
                    _ => a.bgeu(x, y, target),
                };
            }
            "jal" => {
                need(2)?;
                let d = r(0)?;
                let target = parse_target(ops[1], lineno)?;
                a.jal(d, target);
            }
            "j" => {
                need(1)?;
                let target = parse_target(ops[0], lineno)?;
                a.j(target);
            }
            "jalr" => {
                need(2)?;
                let d = r(0)?;
                let (off, base) = parse_mem(ops[1], lineno)?;
                a.jalr(d, base, off);
            }
            "ret" => {
                need(0)?;
                a.ret();
            }
            // sync & cache management
            "sync" => {
                need(0)?;
                a.sync();
            }
            "isync" => {
                need(0)?;
                a.isync();
            }
            "icbi" | "dcbi" => {
                need(1)?;
                let (off, base) = parse_mem(ops[0], lineno)?;
                if mnemonic == "icbi" {
                    a.icbi(base, off)
                } else {
                    a.dcbi(base, off)
                };
            }
            "hwbar" => {
                need(1)?;
                let id =
                    u16::try_from(imm(0)?).map_err(|_| err(lineno, "hwbar id out of range"))?;
                a.hwbar(id);
            }
            "halt" => {
                need(0)?;
                a.halt();
            }
            "nop" => {
                need(0)?;
                a.nop();
            }
            ".align_line" => {
                need(0)?;
                a.align_line();
            }
            other => return Err(err(lineno, format!("unknown mnemonic `{other}`"))),
        }
    }
    a.assemble().map_err(ParseAsmError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instr;

    #[test]
    fn parses_a_small_program() {
        let p = parse_asm(
            "
            entry:
                li   t0, 0x10   ; sixteen
                li   t1, -1
            loop:
                add  t1, t1, t0
                addi t0, t0, -1
                bne  t0, zero, loop
                halt
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(
            p.fetch(p.require_symbol("entry").unwrap()),
            Some(Instr::Li(Reg::T0, 16))
        );
    }

    #[test]
    fn memory_operands_and_floats() {
        let p = parse_asm(
            "
            start:
                fld  f1, 8(t0)
                fmadd f0, f1, f2, f0
                fst  f0, -16(sp)
                ldd  a0, (t1)
                sc   t3, t2, 0(t0)
                halt
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(
            p.fetch(p.require_symbol("start").unwrap()),
            Some(Instr::Fld(FReg::F1, Reg::T0, 8))
        );
    }

    #[test]
    fn disassembly_round_trips_for_straight_line_code() {
        let mut a = Asm::new();
        a.label("entry").unwrap();
        a.li(Reg::T0, 42);
        a.addi(Reg::T1, Reg::T0, -3);
        a.fadd(FReg::F0, FReg::F1, FReg::F2);
        a.ldd(Reg::A0, Reg::SP, 16);
        a.std(Reg::A0, Reg::SP, 24);
        a.sync();
        a.icbi(Reg::K0, 0);
        a.halt();
        let original = a.assemble().unwrap();
        // Program's Display prints `pc: instr` lines; strip the pc column
        // and the label lines stay as-is.
        let listing: String = original
            .to_string()
            .lines()
            .map(|l| match l.split_once(":  ") {
                Some((_, instr)) => format!("    {instr}\n"),
                None => format!("{l}\n"),
            })
            .collect();
        let reparsed = parse_asm(&listing).unwrap();
        assert_eq!(reparsed.len(), original.len());
        for ((_, a), (_, b)) in reparsed.iter().zip(original.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_asm("entry:\n  bogus t0, t1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = parse_asm("  add t0, t1\n").unwrap_err();
        assert!(e.message.contains("expects 3 operands"));

        let e = parse_asm("  li q9, 3\n").unwrap_err();
        assert!(e.message.contains("unknown integer register"));

        let e = parse_asm("  ldd t0, t1\n").unwrap_err();
        assert!(e.message.contains("off(base)"));

        let e = parse_asm("  j nowhere\n").unwrap_err();
        assert!(e.message.contains("never defined"));
    }

    #[test]
    fn numeric_register_names_work() {
        let p = parse_asm("e:\n  add x5, x0, x31\n  halt\n").unwrap();
        assert_eq!(
            p.fetch(p.require_symbol("e").unwrap()),
            Some(Instr::Add(Reg::A1, Reg::ZERO, Reg::NTID))
        );
    }

    #[test]
    fn hex_targets_parse_as_absolute_pcs() {
        let p = parse_asm("  beq t0, zero, 0x10040\n  jal ra, 0x10080\n  j 0x10000\n").unwrap();
        use crate::Target;
        assert_eq!(
            p.fetch(crate::CODE_BASE),
            Some(Instr::Beq(Reg::T0, Reg::ZERO, Target(0x10040)))
        );
        assert_eq!(
            p.fetch(crate::CODE_BASE + 4),
            Some(Instr::Jal(Reg::RA, Target(0x10080)))
        );
        assert_eq!(
            p.fetch(crate::CODE_BASE + 8),
            Some(Instr::Jal(Reg::ZERO, Target(0x10000)))
        );
        let e = parse_asm("  j 0xZZ\n").unwrap_err();
        assert!(e.message.contains("bad target"));
    }

    #[test]
    fn boundary_immediates_round_trip() {
        let p = parse_asm(&format!(
            "  li t0, {}\n  li t1, {}\n  addi t2, t0, {}\n",
            i64::MIN,
            i64::MAX,
            i64::MIN
        ))
        .unwrap();
        assert_eq!(
            p.fetch(crate::CODE_BASE),
            Some(Instr::Li(Reg::T0, i64::MIN))
        );
        assert_eq!(
            p.fetch(crate::CODE_BASE + 4),
            Some(Instr::Li(Reg::T1, i64::MAX))
        );
        assert_eq!(
            p.fetch(crate::CODE_BASE + 8),
            Some(Instr::Addi(Reg::T2, Reg::T0, i64::MIN))
        );
        // unsigned hex above i64::MAX is reinterpreted as two's-complement
        let p = parse_asm("  li t0, 0xffffffffffffffff\n").unwrap();
        assert_eq!(p.fetch(crate::CODE_BASE), Some(Instr::Li(Reg::T0, -1)));
    }

    /// Satellite of the analyzer PR: every [`Instr`] variant, exercised with
    /// boundary operands, must survive `Display` → [`parse_asm`] unchanged.
    /// (NaN is excluded: `Instr`'s `PartialEq` follows f64 semantics.)
    #[test]
    fn every_instruction_round_trips_through_disasm_and_parse() {
        use crate::{MemWidth as W, Target};
        use Instr as I;
        let (z, ra, sp, tls) = (Reg::ZERO, Reg::RA, Reg::SP, Reg::TLS);
        let (t0, t9, k0, k1) = (Reg::T0, Reg::T9, Reg::K0, Reg::K1);
        let (tid, ntid) = (Reg::TID, Reg::NTID);
        let (f0, f1, f2, f31) = (FReg::F0, FReg::F1, FReg::F2, FReg::new(31));
        let code = vec![
            // integer register-register (all 15)
            I::Add(t0, z, ntid),
            I::Sub(Reg::A0, t9, t0),
            I::Mul(k0, k1, tid),
            I::Div(t0, t0, t0),
            I::Rem(Reg::S5, Reg::S0, Reg::A7),
            I::And(t0, t9, z),
            I::Or(Reg::A1, Reg::A2, Reg::A3),
            I::Xor(t9, t9, t9),
            I::Sll(t0, t9, k0),
            I::Srl(t0, t9, k0),
            I::Sra(t0, t9, k0),
            I::Slt(t0, tid, ntid),
            I::Sltu(t0, tid, ntid),
            I::Min(t0, t9, k0),
            I::Max(t0, t9, k0),
            // integer register-immediate, boundary immediates
            I::Addi(t0, t9, i64::MIN),
            I::Andi(t0, t9, -1),
            I::Ori(t0, t9, i64::MAX),
            I::Xori(t0, t9, 0),
            I::Slli(t0, t9, 0),
            I::Srli(t0, t9, 63),
            I::Srai(t0, t9, 63),
            I::Slti(t0, t9, -1),
            I::Li(t0, i64::MIN),
            I::Li(t9, i64::MAX),
            // floating point, boundary values (NaN excluded)
            I::Fadd(f0, f1, f2),
            I::Fsub(f0, f1, f2),
            I::Fmul(f0, f1, f2),
            I::Fdiv(f0, f1, f2),
            I::Fmadd(f0, f1, f2, f31),
            I::Fneg(f0, f31),
            I::Fmov(f31, f0),
            I::Fli(f0, 0.0),
            I::Fli(f1, -2.5),
            I::Fli(f2, f64::MAX),
            I::Fli(f2, f64::MIN_POSITIVE),
            I::Fli(f31, f64::INFINITY),
            I::Fli(f31, f64::NEG_INFINITY),
            I::Fcvtif(f0, t0),
            I::Fcvtfi(t0, f0),
            I::Feq(t0, f0, f1),
            I::Flt(t0, f0, f1),
            I::Fle(t0, f0, f1),
            // memory, every width, boundary offsets
            I::Ld(t0, sp, i64::MIN, W::B),
            I::Ld(t0, sp, -1, W::H),
            I::Ld(t0, sp, 0, W::W),
            I::Ld(t0, sp, i64::MAX, W::D),
            I::St(t0, sp, i64::MIN, W::B),
            I::St(t0, sp, 1, W::H),
            I::St(t0, sp, -8, W::W),
            I::St(t0, sp, i64::MAX, W::D),
            I::Fld(f0, tls, -16),
            I::Fst(f31, tls, i64::MAX),
            I::Ll(t9, k0, 0),
            I::Sc(k1, t9, k0, -64),
            // control flow, boundary targets
            I::Beq(t0, z, Target(0)),
            I::Bne(t0, z, Target(u64::MAX)),
            I::Blt(t0, z, Target(crate::CODE_BASE)),
            I::Bge(t0, z, Target(crate::CODE_BASE + 4)),
            I::Bltu(t0, z, Target(1)),
            I::Bgeu(t0, z, Target(0x1_0040)),
            I::Jal(ra, Target(u64::MAX)),
            I::Jal(z, Target(0)),
            I::Jalr(z, ra, 0),
            I::Jalr(t0, k1, i64::MIN),
            // synchronization & cache management
            I::Sync,
            I::Isync,
            I::Icbi(k0, 0),
            I::Dcbi(k0, i64::MIN),
            I::HwBar(0),
            I::HwBar(u16::MAX),
            // misc
            I::Halt,
            I::Nop,
        ];
        let original = Program::from_parts(code, std::collections::BTreeMap::new());
        let listing: String = original.iter().map(|(_, i)| format!("  {i}\n")).collect();
        let reparsed = parse_asm(&listing).unwrap();
        assert_eq!(reparsed.len(), original.len());
        for (idx, ((_, got), (_, want))) in reparsed.iter().zip(original.iter()).enumerate() {
            assert_eq!(got, want, "instruction {idx} (`{want}`) did not round-trip");
        }
    }

    #[test]
    fn align_directive() {
        let p = parse_asm("e:\n  nop\n  .align_line\nstub:\n  ret\n").unwrap();
        assert_eq!(p.require_symbol("stub").unwrap() % 64, 0);
    }
}
