//! The MiniRISC instruction set.

use crate::{FReg, Reg};

/// Width of an integer memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl MemWidth {
    /// Access size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }
}

/// A resolved control-flow target: an absolute program counter value.
///
/// The assembler resolves symbolic [`Label`](crate::Label)s to `Target`s when
/// [`Asm::assemble`](crate::Asm::assemble) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Target(pub u64);

/// A single MiniRISC instruction.
///
/// Register operands are ordered destination-first, matching the assembler
/// methods. Every instruction occupies [`INSTR_BYTES`](crate::INSTR_BYTES)
/// bytes of the code region and is fetched through the simulated instruction
/// cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    // ---- integer ALU, register-register ----
    /// `rd = rs1 + rs2` (wrapping).
    Add(Reg, Reg, Reg),
    /// `rd = rs1 - rs2` (wrapping).
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 * rs2` (wrapping).
    Mul(Reg, Reg, Reg),
    /// `rd = rs1 / rs2` (signed; division by zero traps).
    Div(Reg, Reg, Reg),
    /// `rd = rs1 % rs2` (signed; division by zero traps).
    Rem(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`.
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`.
    Or(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`.
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 << (rs2 & 63)`.
    Sll(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 63)` (logical).
    Srl(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic).
    Sra(Reg, Reg, Reg),
    /// `rd = (rs1 < rs2) as i64` (signed).
    Slt(Reg, Reg, Reg),
    /// `rd = (rs1 < rs2) as u64` (unsigned).
    Sltu(Reg, Reg, Reg),
    /// `rd = min(rs1, rs2)` (signed). Convenience for Viterbi ACS.
    Min(Reg, Reg, Reg),
    /// `rd = max(rs1, rs2)` (signed).
    Max(Reg, Reg, Reg),

    // ---- integer ALU, register-immediate ----
    /// `rd = rs1 + imm` (wrapping).
    Addi(Reg, Reg, i64),
    /// `rd = rs1 & imm`.
    Andi(Reg, Reg, i64),
    /// `rd = rs1 | imm`.
    Ori(Reg, Reg, i64),
    /// `rd = rs1 ^ imm`.
    Xori(Reg, Reg, i64),
    /// `rd = rs1 << shamt`.
    Slli(Reg, Reg, u8),
    /// `rd = rs1 >> shamt` (logical).
    Srli(Reg, Reg, u8),
    /// `rd = rs1 >> shamt` (arithmetic).
    Srai(Reg, Reg, u8),
    /// `rd = (rs1 < imm) as i64` (signed).
    Slti(Reg, Reg, i64),
    /// `rd = imm`. (Interpreted ISA: full 64-bit immediates are allowed.)
    Li(Reg, i64),

    // ---- floating point (f64) ----
    /// `fd = fs1 + fs2`.
    Fadd(FReg, FReg, FReg),
    /// `fd = fs1 - fs2`.
    Fsub(FReg, FReg, FReg),
    /// `fd = fs1 * fs2`.
    Fmul(FReg, FReg, FReg),
    /// `fd = fs1 / fs2`.
    Fdiv(FReg, FReg, FReg),
    /// Fused multiply-add: `fd = fs1 * fs2 + fs3`.
    Fmadd(FReg, FReg, FReg, FReg),
    /// `fd = -fs1`.
    Fneg(FReg, FReg),
    /// `fd = fs1`.
    Fmov(FReg, FReg),
    /// `fd = imm`.
    Fli(FReg, f64),
    /// Convert signed integer to f64: `fd = rs1 as f64`.
    Fcvtif(FReg, Reg),
    /// Convert f64 to signed integer (truncating): `rd = fs1 as i64`.
    Fcvtfi(Reg, FReg),
    /// `rd = (fs1 == fs2) as i64`.
    Feq(Reg, FReg, FReg),
    /// `rd = (fs1 < fs2) as i64`.
    Flt(Reg, FReg, FReg),
    /// `rd = (fs1 <= fs2) as i64`.
    Fle(Reg, FReg, FReg),

    // ---- memory ----
    /// `rd = zero_extend(mem[rs1 + offset])`.
    Ld(Reg, Reg, i64, MemWidth),
    /// `mem[rs1 + offset] = truncate(rs2)`. Operand order: (src, base, offset).
    St(Reg, Reg, i64, MemWidth),
    /// `fd = mem[rs1 + offset]` as f64.
    Fld(FReg, Reg, i64),
    /// `mem[rs1 + offset] = fs` bit pattern. Operand order: (src, base, offset).
    Fst(FReg, Reg, i64),
    /// Load-linked 8 bytes: `rd = mem[rs1 + offset]`, setting the link
    /// register to the accessed line (Alpha `ldq_l`).
    Ll(Reg, Reg, i64),
    /// Store-conditional 8 bytes: if the link is still valid, performs
    /// `mem[rs1 + offset] = rs2` and sets `rd = 1`; otherwise `rd = 0`
    /// (Alpha `stq_c`). Operand order: (rd, src, base, offset).
    Sc(Reg, Reg, Reg, i64),

    // ---- control flow ----
    /// Branch if `rs1 == rs2`.
    Beq(Reg, Reg, Target),
    /// Branch if `rs1 != rs2`.
    Bne(Reg, Reg, Target),
    /// Branch if `rs1 < rs2` (signed).
    Blt(Reg, Reg, Target),
    /// Branch if `rs1 >= rs2` (signed).
    Bge(Reg, Reg, Target),
    /// Branch if `rs1 < rs2` (unsigned).
    Bltu(Reg, Reg, Target),
    /// Branch if `rs1 >= rs2` (unsigned).
    Bgeu(Reg, Reg, Target),
    /// Jump and link: `rd = pc + 4; pc = target`.
    Jal(Reg, Target),
    /// Jump and link register: `rd = pc + 4; pc = rs1 + offset`.
    Jalr(Reg, Reg, i64),

    // ---- synchronization & cache management ----
    /// Full memory fence (Alpha `mb` / PowerPC `sync`): stalls until the
    /// store buffer has drained and all outstanding memory operations have
    /// completed.
    Sync,
    /// Discard prefetched instructions and flush the pipeline
    /// (PowerPC `ISYNC`).
    Isync,
    /// Invalidate the instruction-cache line containing `rs1 + offset`
    /// throughout the hierarchy above the barrier filter (PowerPC `ICBI`).
    /// User-mode; permission-checked like any memory reference.
    Icbi(Reg, i64),
    /// Invalidate the data-cache line containing `rs1 + offset` throughout
    /// the hierarchy above the barrier filter, writing back first if dirty
    /// (PowerPC `DCBI`).
    Dcbi(Reg, i64),
    /// Dedicated-network barrier (baseline): signal the global combining
    /// logic for barrier `id` and stall until it fires. Models the
    /// Beckmann & Polychronopoulos hardware with 2-cycle each-way latency.
    HwBar(u16),

    // ---- misc ----
    /// Stop this thread; the core becomes idle.
    Halt,
    /// No operation (also used as alignment padding).
    Nop,
}

/// How a [`MemRef`] touches the referenced location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemRefKind {
    /// Plain data load.
    Read,
    /// Plain data store.
    Write,
    /// Load-linked read (establishes a reservation).
    LoadLinked,
    /// Store-conditional write (may fail without writing).
    StoreConditional,
    /// D-cache line invalidate (`dcbi`): no data transfer.
    InvalidateData,
    /// I-cache line invalidate (`icbi`): no data transfer.
    InvalidateInstr,
}

impl MemRefKind {
    /// Whether this reference can modify memory contents.
    pub fn is_write(self) -> bool {
        matches!(self, MemRefKind::Write | MemRefKind::StoreConditional)
    }
}

/// A memory (or cache-management) reference made by one instruction: the
/// effective address is `base + offset`, covering `bytes` bytes. Extracted
/// by [`Instr::mem_ref`] for the static analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base address register.
    pub base: Reg,
    /// Signed displacement added to `base`.
    pub offset: i64,
    /// Bytes covered (a whole line for the invalidate kinds).
    pub bytes: u64,
    /// Access flavor.
    pub kind: MemRefKind,
}

impl Instr {
    /// Whether this instruction reads or writes data memory (used by fence
    /// drain logic and by the MSHR accounting tests).
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Ld(..)
                | Instr::St(..)
                | Instr::Fld(..)
                | Instr::Fst(..)
                | Instr::Ll(..)
                | Instr::Sc(..)
        )
    }

    /// Whether this instruction is a control-flow instruction.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Beq(..)
                | Instr::Bne(..)
                | Instr::Blt(..)
                | Instr::Bge(..)
                | Instr::Bltu(..)
                | Instr::Bgeu(..)
                | Instr::Jal(..)
                | Instr::Jalr(..)
        )
    }

    /// The integer register this instruction writes, if any.
    ///
    /// Writes to [`Reg::ZERO`](crate::Reg::ZERO) are still reported (the
    /// hardware discards them); dataflow passes that want architectural
    /// effect should filter with [`Reg::is_zero`](crate::Reg::is_zero).
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Instr::Add(d, ..)
            | Instr::Sub(d, ..)
            | Instr::Mul(d, ..)
            | Instr::Div(d, ..)
            | Instr::Rem(d, ..)
            | Instr::And(d, ..)
            | Instr::Or(d, ..)
            | Instr::Xor(d, ..)
            | Instr::Sll(d, ..)
            | Instr::Srl(d, ..)
            | Instr::Sra(d, ..)
            | Instr::Slt(d, ..)
            | Instr::Sltu(d, ..)
            | Instr::Min(d, ..)
            | Instr::Max(d, ..)
            | Instr::Addi(d, ..)
            | Instr::Andi(d, ..)
            | Instr::Ori(d, ..)
            | Instr::Xori(d, ..)
            | Instr::Slli(d, ..)
            | Instr::Srli(d, ..)
            | Instr::Srai(d, ..)
            | Instr::Slti(d, ..)
            | Instr::Li(d, ..)
            | Instr::Fcvtfi(d, ..)
            | Instr::Feq(d, ..)
            | Instr::Flt(d, ..)
            | Instr::Fle(d, ..)
            | Instr::Ld(d, ..)
            | Instr::Ll(d, ..)
            | Instr::Sc(d, ..)
            | Instr::Jal(d, ..)
            | Instr::Jalr(d, ..) => Some(d),
            _ => None,
        }
    }

    /// The floating-point register this instruction writes, if any.
    pub fn fdef(&self) -> Option<FReg> {
        match *self {
            Instr::Fadd(d, ..)
            | Instr::Fsub(d, ..)
            | Instr::Fmul(d, ..)
            | Instr::Fdiv(d, ..)
            | Instr::Fmadd(d, ..)
            | Instr::Fneg(d, ..)
            | Instr::Fmov(d, ..)
            | Instr::Fli(d, ..)
            | Instr::Fcvtif(d, ..)
            | Instr::Fld(d, ..) => Some(d),
            _ => None,
        }
    }

    /// Integer registers this instruction reads (up to three), in operand
    /// order. Unused slots are `None`.
    pub fn int_uses(&self) -> [Option<Reg>; 3] {
        match *self {
            Instr::Add(_, a, b)
            | Instr::Sub(_, a, b)
            | Instr::Mul(_, a, b)
            | Instr::Div(_, a, b)
            | Instr::Rem(_, a, b)
            | Instr::And(_, a, b)
            | Instr::Or(_, a, b)
            | Instr::Xor(_, a, b)
            | Instr::Sll(_, a, b)
            | Instr::Srl(_, a, b)
            | Instr::Sra(_, a, b)
            | Instr::Slt(_, a, b)
            | Instr::Sltu(_, a, b)
            | Instr::Min(_, a, b)
            | Instr::Max(_, a, b) => [Some(a), Some(b), None],
            Instr::Addi(_, a, _)
            | Instr::Andi(_, a, _)
            | Instr::Ori(_, a, _)
            | Instr::Xori(_, a, _)
            | Instr::Slli(_, a, _)
            | Instr::Srli(_, a, _)
            | Instr::Srai(_, a, _)
            | Instr::Slti(_, a, _) => [Some(a), None, None],
            Instr::Fcvtif(_, a) => [Some(a), None, None],
            Instr::Ld(_, base, ..) | Instr::Fld(_, base, _) | Instr::Ll(_, base, _) => {
                [Some(base), None, None]
            }
            Instr::St(src, base, ..) => [Some(src), Some(base), None],
            Instr::Fst(_, base, _) => [Some(base), None, None],
            Instr::Sc(_, src, base, _) => [Some(src), Some(base), None],
            Instr::Beq(a, b, _)
            | Instr::Bne(a, b, _)
            | Instr::Blt(a, b, _)
            | Instr::Bge(a, b, _)
            | Instr::Bltu(a, b, _)
            | Instr::Bgeu(a, b, _) => [Some(a), Some(b), None],
            Instr::Jalr(_, base, _) => [Some(base), None, None],
            Instr::Icbi(base, _) | Instr::Dcbi(base, _) => [Some(base), None, None],
            _ => [None, None, None],
        }
    }

    /// Floating-point registers this instruction reads (up to three), in
    /// operand order. Unused slots are `None`.
    pub fn fp_uses(&self) -> [Option<FReg>; 3] {
        match *self {
            Instr::Fadd(_, a, b)
            | Instr::Fsub(_, a, b)
            | Instr::Fmul(_, a, b)
            | Instr::Fdiv(_, a, b) => [Some(a), Some(b), None],
            Instr::Fmadd(_, a, b, c) => [Some(a), Some(b), Some(c)],
            Instr::Fneg(_, a) | Instr::Fmov(_, a) => [Some(a), None, None],
            Instr::Fcvtfi(_, a) => [Some(a), None, None],
            Instr::Feq(_, a, b) | Instr::Flt(_, a, b) | Instr::Fle(_, a, b) => {
                [Some(a), Some(b), None]
            }
            Instr::Fst(src, ..) => [Some(src), None, None],
            _ => [None, None, None],
        }
    }

    /// The memory or cache-line reference this instruction makes, if any.
    /// Covers loads, stores, LL/SC and the `dcbi`/`icbi` invalidates (whose
    /// `bytes` span a whole cache line).
    pub fn mem_ref(&self) -> Option<MemRef> {
        let r = |base, offset, bytes, kind| MemRef {
            base,
            offset,
            bytes,
            kind,
        };
        match *self {
            Instr::Ld(_, base, off, w) => Some(r(base, off, w.bytes(), MemRefKind::Read)),
            Instr::St(_, base, off, w) => Some(r(base, off, w.bytes(), MemRefKind::Write)),
            Instr::Fld(_, base, off) => Some(r(base, off, 8, MemRefKind::Read)),
            Instr::Fst(_, base, off) => Some(r(base, off, 8, MemRefKind::Write)),
            Instr::Ll(_, base, off) => Some(r(base, off, 8, MemRefKind::LoadLinked)),
            Instr::Sc(_, _, base, off) => Some(r(base, off, 8, MemRefKind::StoreConditional)),
            Instr::Dcbi(base, off) => Some(r(base, off, 64, MemRefKind::InvalidateData)),
            Instr::Icbi(base, off) => Some(r(base, off, 64, MemRefKind::InvalidateInstr)),
            _ => None,
        }
    }

    /// Whether a decoded superblock must end *after* this instruction.
    ///
    /// Superblock caches (the simulator's decoded-trace execution layer)
    /// pre-decode straight-line runs of instructions. A run cannot continue
    /// past an instruction whose successor is not statically `pc + 4`
    /// (control flow, `halt`) or that interacts with instruction fetch or
    /// synchronization state (`isync`, `icbi`, `dcbi`, `sync`, `hwbar`,
    /// store-conditional), so those terminate the block.
    pub fn ends_decode_block(&self) -> bool {
        self.is_control()
            || matches!(
                self,
                Instr::Sync
                    | Instr::Isync
                    | Instr::Icbi(..)
                    | Instr::Dcbi(..)
                    | Instr::HwBar(..)
                    | Instr::Sc(..)
                    | Instr::Halt
            )
    }

    /// The statically-known control-flow target of this instruction:
    /// conditional branches and `jal`. `jalr` is indirect and returns `None`.
    pub fn branch_target(&self) -> Option<u64> {
        match *self {
            Instr::Beq(_, _, t)
            | Instr::Bne(_, _, t)
            | Instr::Blt(_, _, t)
            | Instr::Bge(_, _, t)
            | Instr::Bltu(_, _, t)
            | Instr::Bgeu(_, _, t)
            | Instr::Jal(_, t) => Some(t.0),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B.bytes(), 1);
        assert_eq!(MemWidth::H.bytes(), 2);
        assert_eq!(MemWidth::W.bytes(), 4);
        assert_eq!(MemWidth::D.bytes(), 8);
    }

    #[test]
    fn classification() {
        assert!(Instr::Ld(Reg::T0, Reg::T1, 0, MemWidth::D).is_memory());
        assert!(Instr::Sc(Reg::T0, Reg::T1, Reg::T2, 0).is_memory());
        assert!(!Instr::Sync.is_memory());
        assert!(Instr::Jal(Reg::RA, Target(0)).is_control());
        assert!(!Instr::Nop.is_control());
    }

    #[test]
    fn def_use_accessors() {
        let add = Instr::Add(Reg::T0, Reg::T1, Reg::T2);
        assert_eq!(add.def(), Some(Reg::T0));
        assert_eq!(add.fdef(), None);
        assert_eq!(add.int_uses(), [Some(Reg::T1), Some(Reg::T2), None]);

        let st = Instr::St(Reg::A0, Reg::SP, -8, MemWidth::W);
        assert_eq!(st.def(), None);
        assert_eq!(st.int_uses(), [Some(Reg::A0), Some(Reg::SP), None]);

        let sc = Instr::Sc(Reg::K1, Reg::T9, Reg::K0, 0);
        assert_eq!(sc.def(), Some(Reg::K1));
        assert_eq!(sc.int_uses(), [Some(Reg::T9), Some(Reg::K0), None]);

        let fmadd = Instr::Fmadd(FReg::F0, FReg::F1, FReg::F2, FReg::F3);
        assert_eq!(fmadd.fdef(), Some(FReg::F0));
        assert_eq!(
            fmadd.fp_uses(),
            [Some(FReg::F1), Some(FReg::F2), Some(FReg::F3)]
        );

        let fst = Instr::Fst(FReg::F4, Reg::A1, 16);
        assert_eq!(fst.fp_uses(), [Some(FReg::F4), None, None]);
        assert_eq!(fst.int_uses(), [Some(Reg::A1), None, None]);
    }

    #[test]
    fn mem_ref_extraction() {
        let ld = Instr::Ld(Reg::T0, Reg::T1, 24, MemWidth::H);
        let r = ld.mem_ref().unwrap();
        assert_eq!(
            (r.base, r.offset, r.bytes, r.kind),
            (Reg::T1, 24, 2, MemRefKind::Read)
        );
        assert!(!r.kind.is_write());

        let dcbi = Instr::Dcbi(Reg::K0, 0).mem_ref().unwrap();
        assert_eq!(dcbi.bytes, 64);
        assert_eq!(dcbi.kind, MemRefKind::InvalidateData);

        let sc = Instr::Sc(Reg::K1, Reg::T9, Reg::K0, 8).mem_ref().unwrap();
        assert!(sc.kind.is_write());
        assert_eq!(sc.bytes, 8);
        assert!(Instr::Sync.mem_ref().is_none());
    }

    #[test]
    fn decode_block_enders() {
        for ender in [
            Instr::Beq(Reg::T0, Reg::T1, Target(0)),
            Instr::Jal(Reg::RA, Target(0)),
            Instr::Jalr(Reg::ZERO, Reg::RA, 0),
            Instr::Sync,
            Instr::Isync,
            Instr::Icbi(Reg::K0, 0),
            Instr::Dcbi(Reg::K0, 0),
            Instr::HwBar(1),
            Instr::Sc(Reg::T0, Reg::T1, Reg::T2, 0),
            Instr::Halt,
        ] {
            assert!(ender.ends_decode_block(), "{ender} must end a block");
        }
        for straight in [
            Instr::Addi(Reg::T0, Reg::T0, 1),
            Instr::Ld(Reg::T0, Reg::T1, 0, MemWidth::D),
            Instr::Ll(Reg::T0, Reg::T1, 0),
            Instr::St(Reg::T0, Reg::T1, 0, MemWidth::D),
            Instr::Nop,
        ] {
            assert!(!straight.ends_decode_block(), "{straight} is straight-line");
        }
    }

    #[test]
    fn branch_targets() {
        assert_eq!(
            Instr::Beq(Reg::T0, Reg::T1, Target(0x1_0040)).branch_target(),
            Some(0x1_0040)
        );
        assert_eq!(
            Instr::Jal(Reg::RA, Target(0x1_0080)).branch_target(),
            Some(0x1_0080)
        );
        assert_eq!(Instr::Jalr(Reg::ZERO, Reg::RA, 0).branch_target(), None);
        assert_eq!(Instr::Nop.branch_target(), None);
    }
}
