//! The MiniRISC instruction set.

use crate::{FReg, Reg};

/// Width of an integer memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl MemWidth {
    /// Access size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }
}

/// A resolved control-flow target: an absolute program counter value.
///
/// The assembler resolves symbolic [`Label`](crate::Label)s to `Target`s when
/// [`Asm::assemble`](crate::Asm::assemble) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Target(pub u64);

/// A single MiniRISC instruction.
///
/// Register operands are ordered destination-first, matching the assembler
/// methods. Every instruction occupies [`INSTR_BYTES`](crate::INSTR_BYTES)
/// bytes of the code region and is fetched through the simulated instruction
/// cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    // ---- integer ALU, register-register ----
    /// `rd = rs1 + rs2` (wrapping).
    Add(Reg, Reg, Reg),
    /// `rd = rs1 - rs2` (wrapping).
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 * rs2` (wrapping).
    Mul(Reg, Reg, Reg),
    /// `rd = rs1 / rs2` (signed; division by zero traps).
    Div(Reg, Reg, Reg),
    /// `rd = rs1 % rs2` (signed; division by zero traps).
    Rem(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`.
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`.
    Or(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`.
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 << (rs2 & 63)`.
    Sll(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 63)` (logical).
    Srl(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic).
    Sra(Reg, Reg, Reg),
    /// `rd = (rs1 < rs2) as i64` (signed).
    Slt(Reg, Reg, Reg),
    /// `rd = (rs1 < rs2) as u64` (unsigned).
    Sltu(Reg, Reg, Reg),
    /// `rd = min(rs1, rs2)` (signed). Convenience for Viterbi ACS.
    Min(Reg, Reg, Reg),
    /// `rd = max(rs1, rs2)` (signed).
    Max(Reg, Reg, Reg),

    // ---- integer ALU, register-immediate ----
    /// `rd = rs1 + imm` (wrapping).
    Addi(Reg, Reg, i64),
    /// `rd = rs1 & imm`.
    Andi(Reg, Reg, i64),
    /// `rd = rs1 | imm`.
    Ori(Reg, Reg, i64),
    /// `rd = rs1 ^ imm`.
    Xori(Reg, Reg, i64),
    /// `rd = rs1 << shamt`.
    Slli(Reg, Reg, u8),
    /// `rd = rs1 >> shamt` (logical).
    Srli(Reg, Reg, u8),
    /// `rd = rs1 >> shamt` (arithmetic).
    Srai(Reg, Reg, u8),
    /// `rd = (rs1 < imm) as i64` (signed).
    Slti(Reg, Reg, i64),
    /// `rd = imm`. (Interpreted ISA: full 64-bit immediates are allowed.)
    Li(Reg, i64),

    // ---- floating point (f64) ----
    /// `fd = fs1 + fs2`.
    Fadd(FReg, FReg, FReg),
    /// `fd = fs1 - fs2`.
    Fsub(FReg, FReg, FReg),
    /// `fd = fs1 * fs2`.
    Fmul(FReg, FReg, FReg),
    /// `fd = fs1 / fs2`.
    Fdiv(FReg, FReg, FReg),
    /// Fused multiply-add: `fd = fs1 * fs2 + fs3`.
    Fmadd(FReg, FReg, FReg, FReg),
    /// `fd = -fs1`.
    Fneg(FReg, FReg),
    /// `fd = fs1`.
    Fmov(FReg, FReg),
    /// `fd = imm`.
    Fli(FReg, f64),
    /// Convert signed integer to f64: `fd = rs1 as f64`.
    Fcvtif(FReg, Reg),
    /// Convert f64 to signed integer (truncating): `rd = fs1 as i64`.
    Fcvtfi(Reg, FReg),
    /// `rd = (fs1 == fs2) as i64`.
    Feq(Reg, FReg, FReg),
    /// `rd = (fs1 < fs2) as i64`.
    Flt(Reg, FReg, FReg),
    /// `rd = (fs1 <= fs2) as i64`.
    Fle(Reg, FReg, FReg),

    // ---- memory ----
    /// `rd = zero_extend(mem[rs1 + offset])`.
    Ld(Reg, Reg, i64, MemWidth),
    /// `mem[rs1 + offset] = truncate(rs2)`. Operand order: (src, base, offset).
    St(Reg, Reg, i64, MemWidth),
    /// `fd = mem[rs1 + offset]` as f64.
    Fld(FReg, Reg, i64),
    /// `mem[rs1 + offset] = fs` bit pattern. Operand order: (src, base, offset).
    Fst(FReg, Reg, i64),
    /// Load-linked 8 bytes: `rd = mem[rs1 + offset]`, setting the link
    /// register to the accessed line (Alpha `ldq_l`).
    Ll(Reg, Reg, i64),
    /// Store-conditional 8 bytes: if the link is still valid, performs
    /// `mem[rs1 + offset] = rs2` and sets `rd = 1`; otherwise `rd = 0`
    /// (Alpha `stq_c`). Operand order: (rd, src, base, offset).
    Sc(Reg, Reg, Reg, i64),

    // ---- control flow ----
    /// Branch if `rs1 == rs2`.
    Beq(Reg, Reg, Target),
    /// Branch if `rs1 != rs2`.
    Bne(Reg, Reg, Target),
    /// Branch if `rs1 < rs2` (signed).
    Blt(Reg, Reg, Target),
    /// Branch if `rs1 >= rs2` (signed).
    Bge(Reg, Reg, Target),
    /// Branch if `rs1 < rs2` (unsigned).
    Bltu(Reg, Reg, Target),
    /// Branch if `rs1 >= rs2` (unsigned).
    Bgeu(Reg, Reg, Target),
    /// Jump and link: `rd = pc + 4; pc = target`.
    Jal(Reg, Target),
    /// Jump and link register: `rd = pc + 4; pc = rs1 + offset`.
    Jalr(Reg, Reg, i64),

    // ---- synchronization & cache management ----
    /// Full memory fence (Alpha `mb` / PowerPC `sync`): stalls until the
    /// store buffer has drained and all outstanding memory operations have
    /// completed.
    Sync,
    /// Discard prefetched instructions and flush the pipeline
    /// (PowerPC `ISYNC`).
    Isync,
    /// Invalidate the instruction-cache line containing `rs1 + offset`
    /// throughout the hierarchy above the barrier filter (PowerPC `ICBI`).
    /// User-mode; permission-checked like any memory reference.
    Icbi(Reg, i64),
    /// Invalidate the data-cache line containing `rs1 + offset` throughout
    /// the hierarchy above the barrier filter, writing back first if dirty
    /// (PowerPC `DCBI`).
    Dcbi(Reg, i64),
    /// Dedicated-network barrier (baseline): signal the global combining
    /// logic for barrier `id` and stall until it fires. Models the
    /// Beckmann & Polychronopoulos hardware with 2-cycle each-way latency.
    HwBar(u16),

    // ---- misc ----
    /// Stop this thread; the core becomes idle.
    Halt,
    /// No operation (also used as alignment padding).
    Nop,
}

impl Instr {
    /// Whether this instruction reads or writes data memory (used by fence
    /// drain logic and by the MSHR accounting tests).
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Ld(..)
                | Instr::St(..)
                | Instr::Fld(..)
                | Instr::Fst(..)
                | Instr::Ll(..)
                | Instr::Sc(..)
        )
    }

    /// Whether this instruction is a control-flow instruction.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Beq(..)
                | Instr::Bne(..)
                | Instr::Blt(..)
                | Instr::Bge(..)
                | Instr::Bltu(..)
                | Instr::Bgeu(..)
                | Instr::Jal(..)
                | Instr::Jalr(..)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B.bytes(), 1);
        assert_eq!(MemWidth::H.bytes(), 2);
        assert_eq!(MemWidth::W.bytes(), 4);
        assert_eq!(MemWidth::D.bytes(), 8);
    }

    #[test]
    fn classification() {
        assert!(Instr::Ld(Reg::T0, Reg::T1, 0, MemWidth::D).is_memory());
        assert!(Instr::Sc(Reg::T0, Reg::T1, Reg::T2, 0).is_memory());
        assert!(!Instr::Sync.is_memory());
        assert!(Instr::Jal(Reg::RA, Target(0)).is_control());
        assert!(!Instr::Nop.is_control());
    }
}
