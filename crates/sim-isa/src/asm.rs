//! The MiniRISC assembler.

use std::collections::BTreeMap;
use std::fmt;

use crate::{FReg, Instr, MemWidth, Program, Reg, Target, CODE_BASE, INSTRS_PER_LINE, INSTR_BYTES};

/// A control-flow target given to the assembler: a symbolic label name or an
/// already-known absolute program counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Label {
    /// Named label, resolved at [`Asm::assemble`] time (forward references
    /// are allowed).
    Name(String),
    /// Absolute program counter.
    Pc(u64),
}

impl From<&str> for Label {
    fn from(name: &str) -> Label {
        Label::Name(name.to_owned())
    }
}

impl From<String> for Label {
    fn from(name: String) -> Label {
        Label::Name(name)
    }
}

impl From<u64> for Label {
    fn from(pc: u64) -> Label {
        Label::Pc(pc)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Name(n) => f.write_str(n),
            Label::Pc(pc) => write!(f, "{pc:#x}"),
        }
    }
}

/// Errors reported while building or assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// The same label name was defined twice.
    DuplicateLabel(String),
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateLabel(n) => write!(f, "label `{n}` defined more than once"),
            AsmError::UndefinedLabel(n) => write!(f, "label `{n}` referenced but never defined"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Builder for MiniRISC programs.
///
/// Emit methods append one instruction each and return `&mut Self` so short
/// sequences can be chained. Control-flow targets accept label names (string
/// literals), resolved — including forward references — when
/// [`assemble`](Asm::assemble) is called.
///
/// # Example
///
/// ```
/// use sim_isa::{Asm, Reg};
///
/// # fn main() -> Result<(), sim_isa::AsmError> {
/// let mut a = Asm::new();
/// a.li(Reg::A0, 3);
/// a.jal(Reg::RA, "double"); // forward reference
/// a.halt();
/// a.label("double")?;
/// a.add(Reg::A0, Reg::A0, Reg::A0);
/// a.jalr(Reg::ZERO, Reg::RA, 0); // return
/// let p = a.assemble()?;
/// assert!(p.symbol("double").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    code: Vec<Instr>,
    labels: BTreeMap<String, u64>,
    // (instruction index, label) pairs awaiting resolution
    fixups: Vec<(usize, String)>,
}

impl Asm {
    /// Create an empty assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// The program counter the next emitted instruction will occupy.
    pub fn here(&self) -> u64 {
        CODE_BASE + self.code.len() as u64 * INSTR_BYTES
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether no instructions have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Define a label at the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DuplicateLabel`] if `name` is already defined.
    pub fn label(&mut self, name: &str) -> Result<&mut Asm, AsmError> {
        if self.labels.contains_key(name) {
            return Err(AsmError::DuplicateLabel(name.to_owned()));
        }
        self.labels.insert(name.to_owned(), self.here());
        Ok(self)
    }

    /// Pad with `nop`s until the next instruction starts a fresh 64-byte
    /// instruction-cache line. Used for the I-cache barrier arrival stubs,
    /// whose lines must be individually invalidatable (§3.4.1).
    pub fn align_line(&mut self) -> &mut Asm {
        while !self.here().is_multiple_of(INSTRS_PER_LINE * INSTR_BYTES) {
            self.nop();
        }
        self
    }

    fn push(&mut self, i: Instr) -> &mut Asm {
        self.code.push(i);
        self
    }

    fn push_branch(&mut self, target: Label, make: impl FnOnce(Target) -> Instr) -> &mut Asm {
        match target {
            Label::Pc(pc) => self.push(make(Target(pc))),
            Label::Name(name) => {
                // Emit with a placeholder target; patched during assemble().
                self.fixups.push((self.code.len(), name));
                self.push(make(Target(u64::MAX)))
            }
        }
    }

    /// Resolve all label references and produce the program image.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if any referenced label was never
    /// defined.
    pub fn assemble(mut self) -> Result<Program, AsmError> {
        for (idx, name) in std::mem::take(&mut self.fixups) {
            let pc = *self
                .labels
                .get(&name)
                .ok_or_else(|| AsmError::UndefinedLabel(name.clone()))?;
            let t = Target(pc);
            self.code[idx] = match self.code[idx] {
                Instr::Beq(a, b, _) => Instr::Beq(a, b, t),
                Instr::Bne(a, b, _) => Instr::Bne(a, b, t),
                Instr::Blt(a, b, _) => Instr::Blt(a, b, t),
                Instr::Bge(a, b, _) => Instr::Bge(a, b, t),
                Instr::Bltu(a, b, _) => Instr::Bltu(a, b, t),
                Instr::Bgeu(a, b, _) => Instr::Bgeu(a, b, t),
                Instr::Jal(rd, _) => Instr::Jal(rd, t),
                other => other,
            };
        }
        Ok(Program::from_parts(self.code, self.labels))
    }
}

macro_rules! emit_rrr {
    ($($(#[$doc:meta])* $name:ident => $variant:ident),* $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
                    self.push(Instr::$variant(rd, rs1, rs2))
                }
            )*
        }
    };
}

emit_rrr! {
    /// `rd = rs1 + rs2`.
    add => Add,
    /// `rd = rs1 - rs2`.
    sub => Sub,
    /// `rd = rs1 * rs2`.
    mul => Mul,
    /// `rd = rs1 / rs2` (signed).
    div => Div,
    /// `rd = rs1 % rs2` (signed).
    rem => Rem,
    /// `rd = rs1 & rs2`.
    and => And,
    /// `rd = rs1 | rs2`.
    or => Or,
    /// `rd = rs1 ^ rs2`.
    xor => Xor,
    /// `rd = rs1 << rs2`.
    sll => Sll,
    /// `rd = rs1 >> rs2` (logical).
    srl => Srl,
    /// `rd = rs1 >> rs2` (arithmetic).
    sra => Sra,
    /// `rd = (rs1 < rs2) as i64` (signed).
    slt => Slt,
    /// `rd = (rs1 < rs2) as u64` (unsigned).
    sltu => Sltu,
    /// `rd = min(rs1, rs2)` (signed).
    min => Min,
    /// `rd = max(rs1, rs2)` (signed).
    max => Max,
}

macro_rules! emit_rri {
    ($($(#[$doc:meta])* $name:ident => $variant:ident),* $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
                    self.push(Instr::$variant(rd, rs1, imm))
                }
            )*
        }
    };
}

emit_rri! {
    /// `rd = rs1 + imm`.
    addi => Addi,
    /// `rd = rs1 & imm`.
    andi => Andi,
    /// `rd = rs1 | imm`.
    ori => Ori,
    /// `rd = rs1 ^ imm`.
    xori => Xori,
    /// `rd = (rs1 < imm) as i64` (signed).
    slti => Slti,
}

macro_rules! emit_branch {
    ($($(#[$doc:meta])* $name:ident => $variant:ident),* $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rs1: Reg, rs2: Reg, target: impl Into<Label>) -> &mut Asm {
                    self.push_branch(target.into(), |t| Instr::$variant(rs1, rs2, t))
                }
            )*
        }
    };
}

emit_branch! {
    /// Branch if `rs1 == rs2`.
    beq => Beq,
    /// Branch if `rs1 != rs2`.
    bne => Bne,
    /// Branch if `rs1 < rs2` (signed).
    blt => Blt,
    /// Branch if `rs1 >= rs2` (signed).
    bge => Bge,
    /// Branch if `rs1 < rs2` (unsigned).
    bltu => Bltu,
    /// Branch if `rs1 >= rs2` (unsigned).
    bgeu => Bgeu,
}

macro_rules! emit_fff {
    ($($(#[$doc:meta])* $name:ident => $variant:ident),* $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Asm {
                    self.push(Instr::$variant(fd, fs1, fs2))
                }
            )*
        }
    };
}

emit_fff! {
    /// `fd = fs1 + fs2`.
    fadd => Fadd,
    /// `fd = fs1 - fs2`.
    fsub => Fsub,
    /// `fd = fs1 * fs2`.
    fmul => Fmul,
    /// `fd = fs1 / fs2`.
    fdiv => Fdiv,
}

impl Asm {
    /// `rd = rs1 << shamt`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Asm {
        self.push(Instr::Slli(rd, rs1, shamt))
    }

    /// `rd = rs1 >> shamt` (logical).
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Asm {
        self.push(Instr::Srli(rd, rs1, shamt))
    }

    /// `rd = rs1 >> shamt` (arithmetic).
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Asm {
        self.push(Instr::Srai(rd, rs1, shamt))
    }

    /// Load the 64-bit immediate `imm` into `rd`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Asm {
        self.push(Instr::Li(rd, imm))
    }

    /// Copy `rs1` into `rd` (pseudo-instruction: `addi rd, rs1, 0`).
    pub fn mv(&mut self, rd: Reg, rs1: Reg) -> &mut Asm {
        self.push(Instr::Addi(rd, rs1, 0))
    }

    /// Fused multiply-add `fd = fs1 * fs2 + fs3`.
    pub fn fmadd(&mut self, fd: FReg, fs1: FReg, fs2: FReg, fs3: FReg) -> &mut Asm {
        self.push(Instr::Fmadd(fd, fs1, fs2, fs3))
    }

    /// `fd = -fs1`.
    pub fn fneg(&mut self, fd: FReg, fs1: FReg) -> &mut Asm {
        self.push(Instr::Fneg(fd, fs1))
    }

    /// `fd = fs1`.
    pub fn fmov(&mut self, fd: FReg, fs1: FReg) -> &mut Asm {
        self.push(Instr::Fmov(fd, fs1))
    }

    /// Load the f64 immediate `imm` into `fd`.
    pub fn fli(&mut self, fd: FReg, imm: f64) -> &mut Asm {
        self.push(Instr::Fli(fd, imm))
    }

    /// `fd = rs1 as f64`.
    pub fn fcvtif(&mut self, fd: FReg, rs1: Reg) -> &mut Asm {
        self.push(Instr::Fcvtif(fd, rs1))
    }

    /// `rd = fs1 as i64` (truncating).
    pub fn fcvtfi(&mut self, rd: Reg, fs1: FReg) -> &mut Asm {
        self.push(Instr::Fcvtfi(rd, fs1))
    }

    /// `rd = (fs1 == fs2) as i64`.
    pub fn feq(&mut self, rd: Reg, fs1: FReg, fs2: FReg) -> &mut Asm {
        self.push(Instr::Feq(rd, fs1, fs2))
    }

    /// `rd = (fs1 < fs2) as i64`.
    pub fn flt(&mut self, rd: Reg, fs1: FReg, fs2: FReg) -> &mut Asm {
        self.push(Instr::Flt(rd, fs1, fs2))
    }

    /// `rd = (fs1 <= fs2) as i64`.
    pub fn fle(&mut self, rd: Reg, fs1: FReg, fs2: FReg) -> &mut Asm {
        self.push(Instr::Fle(rd, fs1, fs2))
    }

    /// Load `width` bytes (zero-extended) from `rs1 + offset` into `rd`.
    pub fn ld(&mut self, rd: Reg, rs1: Reg, offset: i64, width: MemWidth) -> &mut Asm {
        self.push(Instr::Ld(rd, rs1, offset, width))
    }

    /// Load 8 bytes from `rs1 + offset` into `rd`.
    pub fn ldd(&mut self, rd: Reg, rs1: Reg, offset: i64) -> &mut Asm {
        self.ld(rd, rs1, offset, MemWidth::D)
    }

    /// Store the low `width` bytes of `src` to `rs1 + offset`.
    pub fn st(&mut self, src: Reg, rs1: Reg, offset: i64, width: MemWidth) -> &mut Asm {
        self.push(Instr::St(src, rs1, offset, width))
    }

    /// Store 8 bytes of `src` to `rs1 + offset`.
    pub fn std(&mut self, src: Reg, rs1: Reg, offset: i64) -> &mut Asm {
        self.st(src, rs1, offset, MemWidth::D)
    }

    /// Load an f64 from `rs1 + offset` into `fd`.
    pub fn fld(&mut self, fd: FReg, rs1: Reg, offset: i64) -> &mut Asm {
        self.push(Instr::Fld(fd, rs1, offset))
    }

    /// Store `fs` to `rs1 + offset`.
    pub fn fst(&mut self, fs: FReg, rs1: Reg, offset: i64) -> &mut Asm {
        self.push(Instr::Fst(fs, rs1, offset))
    }

    /// Load-linked 8 bytes from `rs1 + offset` into `rd` (Alpha `ldq_l`).
    pub fn ll(&mut self, rd: Reg, rs1: Reg, offset: i64) -> &mut Asm {
        self.push(Instr::Ll(rd, rs1, offset))
    }

    /// Store-conditional `src` to `rs1 + offset`; `rd` receives 1 on success,
    /// 0 on failure (Alpha `stq_c`).
    pub fn sc(&mut self, rd: Reg, src: Reg, rs1: Reg, offset: i64) -> &mut Asm {
        self.push(Instr::Sc(rd, src, rs1, offset))
    }

    /// Jump to `target`, writing the return address to `rd`.
    pub fn jal(&mut self, rd: Reg, target: impl Into<Label>) -> &mut Asm {
        self.push_branch(target.into(), |t| Instr::Jal(rd, t))
    }

    /// Unconditional jump (pseudo-instruction: `jal zero, target`).
    pub fn j(&mut self, target: impl Into<Label>) -> &mut Asm {
        self.jal(Reg::ZERO, target)
    }

    /// Jump to `rs1 + offset`, writing the return address to `rd`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, offset: i64) -> &mut Asm {
        self.push(Instr::Jalr(rd, rs1, offset))
    }

    /// Return (pseudo-instruction: `jalr zero, ra, 0`).
    pub fn ret(&mut self) -> &mut Asm {
        self.jalr(Reg::ZERO, Reg::RA, 0)
    }

    /// Full memory fence.
    pub fn sync(&mut self) -> &mut Asm {
        self.push(Instr::Sync)
    }

    /// Discard prefetched instructions / flush the pipeline.
    pub fn isync(&mut self) -> &mut Asm {
        self.push(Instr::Isync)
    }

    /// Invalidate the I-cache line containing `rs1 + offset`.
    pub fn icbi(&mut self, rs1: Reg, offset: i64) -> &mut Asm {
        self.push(Instr::Icbi(rs1, offset))
    }

    /// Invalidate the D-cache line containing `rs1 + offset`.
    pub fn dcbi(&mut self, rs1: Reg, offset: i64) -> &mut Asm {
        self.push(Instr::Dcbi(rs1, offset))
    }

    /// Dedicated-network barrier instruction (baseline hardware model).
    pub fn hwbar(&mut self, id: u16) -> &mut Asm {
        self.push(Instr::HwBar(id))
    }

    /// Stop this thread.
    pub fn halt(&mut self) -> &mut Asm {
        self.push(Instr::Halt)
    }

    /// No operation.
    pub fn nop(&mut self) -> &mut Asm {
        self.push(Instr::Nop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        a.j("end"); // forward
        a.label("top").unwrap();
        a.nop();
        a.bne(Reg::T0, Reg::ZERO, "top"); // backward
        a.label("end").unwrap();
        a.halt();
        let p = a.assemble().unwrap();
        let end = p.symbol("end").unwrap();
        let top = p.symbol("top").unwrap();
        assert_eq!(p.fetch(CODE_BASE), Some(Instr::Jal(Reg::ZERO, Target(end))));
        assert_eq!(
            p.fetch(CODE_BASE + 2 * INSTR_BYTES),
            Some(Instr::Bne(Reg::T0, Reg::ZERO, Target(top)))
        );
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut a = Asm::new();
        a.label("x").unwrap();
        let err = a.label("x").map(|_| ()).unwrap_err();
        assert_eq!(err, AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn undefined_label_rejected() {
        let mut a = Asm::new();
        a.j("nowhere");
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn numeric_targets_pass_through() {
        let mut a = Asm::new();
        a.j(CODE_BASE + 8);
        a.nop();
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(
            p.fetch(CODE_BASE),
            Some(Instr::Jal(Reg::ZERO, Target(CODE_BASE + 8)))
        );
    }

    #[test]
    fn align_line_pads_to_line_boundary() {
        let mut a = Asm::new();
        a.nop();
        a.align_line();
        assert_eq!(a.here() % 64, 0);
        assert_eq!(a.len(), 16); // one nop + 15 pad
                                 // aligning when already aligned is a no-op
        a.align_line();
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn here_advances_by_instr_bytes() {
        let mut a = Asm::new();
        let start = a.here();
        a.nop();
        assert_eq!(a.here(), start + INSTR_BYTES);
    }

    #[test]
    fn pseudo_instructions_expand() {
        let mut a = Asm::new();
        a.mv(Reg::T0, Reg::T1);
        a.ret();
        let p = a.assemble().unwrap();
        assert_eq!(p.fetch(CODE_BASE), Some(Instr::Addi(Reg::T0, Reg::T1, 0)));
        assert_eq!(
            p.fetch(CODE_BASE + INSTR_BYTES),
            Some(Instr::Jalr(Reg::ZERO, Reg::RA, 0))
        );
    }
}
