//! Custom kernel: everything you need to write your own barrier-
//! synchronized MiniRISC workload against the public API — a parallel
//! prefix-sum (Hillis–Steele scan) with one barrier per doubling step.
//!
//! ```text
//! cargo run --release --example custom_kernel [n]
//! ```

use barrier_filter::{BarrierMechanism, BarrierSystem};
use cmp_sim::{AddressSpace, MachineBuilder, SimConfig};
use sim_isa::{Asm, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(64);
    assert!(n.is_power_of_two(), "n must be a power of two");
    let threads = 8.min(n);

    let config = SimConfig::with_cores(threads);
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let mut sys = BarrierSystem::new(&config, threads, &mut space)?;
    let barrier = sys.create_barrier(
        &mut asm,
        &mut space,
        BarrierMechanism::FilterIPingPong,
        threads,
    )?;

    // Double-buffered scan: at step d, out[i] = in[i] + in[i - d] (i >= d).
    let a_buf = space.alloc_u64(n as u64)?;
    let b_buf = space.alloc_u64(n as u64)?;
    let chunk = (n / threads) as i64;

    asm.label("entry")?;
    asm.li(Reg::S1, a_buf as i64); // src
    asm.li(Reg::S2, b_buf as i64); // dst
    asm.li(Reg::S0, 1); // d = step
    asm.label("step_loop")?;
    // my range [lo, hi)
    asm.li(Reg::T0, chunk);
    asm.mul(Reg::T1, Reg::TID, Reg::T0); // lo
    asm.add(Reg::T2, Reg::T1, Reg::T0); // hi
    asm.label("elem_loop")?;
    asm.slli(Reg::T3, Reg::T1, 3);
    asm.add(Reg::T4, Reg::S1, Reg::T3);
    asm.ldd(Reg::T5, Reg::T4, 0); // src[i]
    asm.blt(Reg::T1, Reg::S0, "no_add"); // i < d: copy through
    asm.slli(Reg::T0, Reg::S0, 3);
    asm.sub(Reg::T4, Reg::T4, Reg::T0);
    asm.ldd(Reg::T0, Reg::T4, 0); // src[i - d]
    asm.add(Reg::T5, Reg::T5, Reg::T0);
    asm.label("no_add")?;
    asm.add(Reg::T4, Reg::S2, Reg::T3);
    asm.std(Reg::T5, Reg::T4, 0); // dst[i]
    asm.addi(Reg::T1, Reg::T1, 1);
    asm.blt(Reg::T1, Reg::T2, "elem_loop");
    barrier.emit_call(&mut asm); // wait before anyone reads dst as src
                                 // swap buffers, double the step
    asm.mv(Reg::T0, Reg::S1);
    asm.mv(Reg::S1, Reg::S2);
    asm.mv(Reg::S2, Reg::T0);
    asm.slli(Reg::S0, Reg::S0, 1);
    asm.li(Reg::T0, n as i64);
    asm.blt(Reg::S0, Reg::T0, "step_loop");
    asm.halt();

    let program = asm.assemble()?;
    let entry = program.require_symbol("entry").unwrap();
    let mut mb = MachineBuilder::new(config, program)?;
    let input: Vec<u64> = (0..n as u64).map(|i| i % 7 + 1).collect();
    mb.write_u64_slice(a_buf, &input);
    for _ in 0..threads {
        mb.add_thread(entry);
    }
    sys.install(&mut mb)?;
    let mut machine = mb.build()?;
    let summary = machine.run()?;

    // log2(n) steps: the final scan lands in a_buf iff log2(n) is even.
    let steps = n.trailing_zeros();
    let result_base = if steps.is_multiple_of(2) {
        a_buf
    } else {
        b_buf
    };
    let got = machine.read_u64_slice(result_base, n);
    let mut expected = Vec::with_capacity(n);
    let mut acc = 0u64;
    for &v in &input {
        acc += v;
        expected.push(acc);
    }
    assert_eq!(got, expected, "prefix sum must match the host scan");

    println!("parallel prefix sum over {n} elements on {threads} cores:");
    println!("  {steps} doubling steps, one barrier each");
    println!(
        "  {} cycles, {} instructions",
        summary.cycles, summary.instructions
    );
    println!("  result verified against a host scan");
    Ok(())
}
