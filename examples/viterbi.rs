//! Viterbi decoding (Figure 6 workload): a soft-decision rate-1/2
//! convolutional decoder whose trellis stages are parallelized across cores
//! with one barrier per stage — the paper's example of parallelism so fine
//! that software barriers make the parallel version *slower* than
//! sequential.
//!
//! ```text
//! cargo run --release --example viterbi [data_bits]
//! ```

use barrier_filter::BarrierMechanism;
use kernels::viterbi::Viterbi;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(256);
    let threads = 16;
    let kernel = Viterbi::new(bits);
    println!(
        "K=5 soft-decision Viterbi: {} states, {} trellis stages, {threads} cores \
         ({} state(s) per thread per stage)",
        kernel.states(),
        kernel.stages(),
        kernel.states().div_ceil(threads)
    );
    println!();

    let seq = kernel.run_sequential()?;
    println!("sequential: {:>10.1} cycles per decode", seq.cycles_per_rep);
    println!();
    for mechanism in BarrierMechanism::ALL {
        let par = kernel.run_parallel(threads, mechanism)?;
        let speedup = seq.cycles_per_rep / par.cycles_per_rep;
        let verdict = if speedup < 1.0 {
            "slower than sequential!"
        } else {
            "faster than sequential"
        };
        println!(
            "{:>13}: {:>10.1} cycles  ({speedup:.2}x, {verdict})",
            mechanism.to_string(),
            par.cycles_per_rep,
        );
    }
    println!();
    println!(
        "(paper, Figure 6 / Table 1: software barriers give 0.76x — a slowdown — while \
         filter barriers yield a speedup)"
    );
    Ok(())
}
