//! Quickstart: build a 4-core CMP, register a D-cache barrier filter, run a
//! tiny data-parallel program, and inspect what the filter did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fastbar::prelude::*;
use sim_isa::Reg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = 4;
    // Table 2 machine configuration (the paper's 16-core CMP, here with 4).
    let config = SimConfig::with_cores(threads);
    let mut space = cmp_sim::AddressSpace::new(&config);
    let mut asm = Asm::new();

    // The "OS" registers a barrier backed by the filter hardware.
    let mut sys = BarrierSystem::new(&config, threads, &mut space)?;
    let barrier = sys.create_barrier(&mut asm, &mut space, BarrierMechanism::FilterD, threads)?;
    println!(
        "registered a {} barrier (arrival lines at {:#x})",
        barrier.mechanism(),
        barrier.arrival_base().expect("filter barrier")
    );

    // A toy kernel: each thread doubles its slice of an array, then all
    // threads synchronize, then thread 0 sums the array.
    let n = 64u64;
    let data = space.alloc_u64(n)?;
    let total = space.alloc_u64(1)?;
    let chunk = (n as usize / threads) as i64;

    asm.label("entry")?;
    asm.li(Reg::T0, chunk);
    asm.mul(Reg::T1, Reg::TID, Reg::T0); // lo = tid * chunk
    asm.slli(Reg::T1, Reg::T1, 3);
    asm.li(Reg::T2, data as i64);
    asm.add(Reg::T1, Reg::T1, Reg::T2); // &data[lo]
    asm.label("double_loop")?;
    asm.ldd(Reg::T3, Reg::T1, 0);
    asm.add(Reg::T3, Reg::T3, Reg::T3);
    asm.std(Reg::T3, Reg::T1, 0);
    asm.addi(Reg::T1, Reg::T1, 8);
    asm.addi(Reg::T0, Reg::T0, -1);
    asm.bne(Reg::T0, Reg::ZERO, "double_loop");

    barrier.emit_call(&mut asm); // wait for every thread's slice

    asm.bne(Reg::TID, Reg::ZERO, "done"); // only thread 0 reduces
    asm.li(Reg::T0, n as i64);
    asm.li(Reg::T1, data as i64);
    asm.li(Reg::T3, 0);
    asm.label("sum_loop")?;
    asm.ldd(Reg::T4, Reg::T1, 0);
    asm.add(Reg::T3, Reg::T3, Reg::T4);
    asm.addi(Reg::T1, Reg::T1, 8);
    asm.addi(Reg::T0, Reg::T0, -1);
    asm.bne(Reg::T0, Reg::ZERO, "sum_loop");
    asm.li(Reg::T5, total as i64);
    asm.std(Reg::T3, Reg::T5, 0);
    asm.label("done")?;
    asm.halt();

    // Build the machine: program, initial memory, threads, filter tables.
    let program = asm.assemble()?;
    let entry = program.require_symbol("entry").unwrap();
    let mut mb = MachineBuilder::new(config, program)?;
    let input: Vec<u64> = (1..=n).collect();
    mb.write_u64_slice(data, &input);
    for _ in 0..threads {
        mb.add_thread(entry);
    }
    sys.install(&mut mb)?;
    let mut machine = mb.build()?;

    let summary = machine.run()?;
    let expected: u64 = (1..=n).map(|v| 2 * v).sum();
    assert_eq!(machine.read_u64(total), expected);

    println!(
        "ran {} instructions in {} cycles across {threads} cores",
        summary.instructions, summary.cycles
    );
    println!(
        "sum of doubled array = {} (expected {expected})",
        machine.read_u64(total)
    );
    println!(
        "the filter starved {} fill requests to implement the barrier",
        machine.stats().fills_parked()
    );
    Ok(())
}
