//! Livermore sweep: for one Livermore loop (2, 3 or 6), sweep the vector
//! length and print sequential-vs-parallel cycles for a chosen barrier
//! mechanism — a one-kernel slice of the paper's Figures 7, 8 and 10.
//!
//! ```text
//! cargo run --release --example livermore_sweep [loop#] [mechanism]
//! e.g. cargo run --release --example livermore_sweep 3 filter-i
//! ```

use barrier_filter::BarrierMechanism;
use kernels::livermore::{Loop2, Loop3, Loop6};
use kernels::KernelOutcome;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(3);
    let mechanism: BarrierMechanism = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(BarrierMechanism::FilterI);
    let threads = 16;
    let sizes: &[usize] = match which {
        6 => &[16, 32, 64, 128],
        _ => &[16, 32, 64, 128, 256, 512],
    };

    println!("Livermore loop {which} with the {mechanism} barrier on {threads} cores");
    println!();
    println!(
        "{:>6}  {:>12}  {:>12}  {:>8}",
        "N", "sequential", "parallel", "speedup"
    );
    for &n in sizes {
        let (seq, par): (KernelOutcome, KernelOutcome) = match which {
            2 => {
                let k = Loop2::new(n);
                (k.run_sequential()?, k.run_parallel(threads, mechanism)?)
            }
            6 => {
                let k = Loop6::new(n);
                (k.run_sequential()?, k.run_parallel(threads, mechanism)?)
            }
            _ => {
                let k = Loop3::new(n);
                (k.run_sequential()?, k.run_parallel(threads, mechanism)?)
            }
        };
        let marker = if par.cycles_per_rep < seq.cycles_per_rep {
            "  <- parallel wins"
        } else {
            ""
        };
        println!(
            "{n:>6}  {:>12.1}  {:>12.1}  {:>8.2}{marker}",
            seq.cycles_per_rep,
            par.cycles_per_rep,
            seq.cycles_per_rep / par.cycles_per_rep
        );
    }
    println!();
    println!("every run above was validated against a host reference before being reported");
    Ok(())
}
