//! Barrier showdown: measure average barrier latency for all seven
//! mechanisms of the paper at a chosen core count (default 16), using the
//! paper's §4.2 methodology — a loop of back-to-back barriers with no work
//! between them.
//!
//! ```text
//! cargo run --release --example barrier_showdown [cores]
//! ```

use barrier_filter::{BarrierMechanism, BarrierSystem};
use cmp_sim::{AddressSpace, MachineBuilder, SimConfig};
use sim_isa::{Asm, Reg};

fn latency(mechanism: BarrierMechanism, cores: usize) -> Result<f64, Box<dyn std::error::Error>> {
    let (inner, outer) = (32u64, 8u64);
    let config = SimConfig::with_cores(cores);
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let mut sys = BarrierSystem::new(&config, cores, &mut space)?;
    let barrier = sys.create_barrier(&mut asm, &mut space, mechanism, cores)?;
    asm.label("entry")?;
    asm.li(Reg::S0, outer as i64);
    asm.label("outer")?;
    asm.li(Reg::S1, inner as i64);
    asm.label("inner")?;
    barrier.emit_call(&mut asm);
    asm.addi(Reg::S1, Reg::S1, -1);
    asm.bne(Reg::S1, Reg::ZERO, "inner");
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bne(Reg::S0, Reg::ZERO, "outer");
    asm.halt();
    let program = asm.assemble()?;
    let entry = program.require_symbol("entry").unwrap();
    let mut mb = MachineBuilder::new(config, program)?;
    for _ in 0..cores {
        mb.add_thread(entry);
    }
    sys.install(&mut mb)?;
    let mut machine = mb.build()?;
    let summary = machine.run()?;
    Ok(summary.cycles as f64 / (inner * outer) as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(16);
    println!("average cycles per barrier on {cores} cores (256 back-to-back barriers):");
    println!();
    let mut results: Vec<(BarrierMechanism, f64)> = Vec::new();
    for mechanism in BarrierMechanism::ALL {
        results.push((mechanism, latency(mechanism, cores)?));
    }
    let best = results
        .iter()
        .map(|&(_, c)| c)
        .fold(f64::INFINITY, f64::min);
    for (mechanism, cycles) in results {
        let bar = "#"
            .repeat((cycles / best).round() as usize)
            .chars()
            .take(60)
            .collect::<String>();
        println!("{:>13}  {cycles:8.1}  {bar}", mechanism.to_string());
    }
    println!();
    println!("(each '#' is one multiple of the fastest mechanism)");
    Ok(())
}
