//! Autocorrelation (Figure 5 workload): the EEMBC-like fixed-point
//! autocorrelation kernel on a speech-like input, comparing all seven
//! barrier mechanisms on 16 cores.
//!
//! ```text
//! cargo run --release --example autocorrelation [samples]
//! ```

use barrier_filter::BarrierMechanism;
use kernels::autocorr::Autocorr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1024);
    let threads = 16;
    let kernel = Autocorr::new(n);
    println!(
        "autocorrelation over {n} speech-like samples, {} lags, {threads} cores",
        kernel.lags()
    );

    // Show a few lag values so the signal is visibly speech-like
    // (r[0] = energy, slow decay over small lags).
    let r = kernel.reference();
    println!(
        "r[0..4] = {:?}  (r[0] is the signal energy)",
        &r[..4.min(r.len())]
    );
    println!();

    let seq = kernel.run_sequential()?;
    println!(
        "sequential: {:>10.1} cycles per invocation",
        seq.cycles_per_rep
    );
    println!();
    for mechanism in BarrierMechanism::ALL {
        let par = kernel.run_parallel(threads, mechanism)?;
        println!(
            "{:>13}: {:>10.1} cycles  ({:.2}x speedup)",
            mechanism.to_string(),
            par.cycles_per_rep,
            seq.cycles_per_rep / par.cycles_per_rep
        );
    }
    println!();
    println!("(paper, Figure 5: 3.86x software, 7.31x best filter, 7.98x dedicated network)");
    Ok(())
}
