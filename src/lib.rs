//! `fastbar` — a reproduction of *"Exploiting Fine-Grained Data Parallelism
//! with Chip Multiprocessors and Fast Barriers"* (Sampson, González, Collard,
//! Jouppi, Schlansker, Calder — MICRO 2006).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`sim_isa`] — the MiniRISC instruction set and assembler;
//! * [`cmp_sim`] — the event-driven cycle-level CMP simulator;
//! * [`barrier_filter`] — the paper's contribution: barrier filters, plus the
//!   software and dedicated-network baseline barrier mechanisms;
//! * [`kernels`] — the fine-grained data-parallel kernels the paper
//!   evaluates (Livermore loops 2/3/6, EEMBC-like autocorrelation and
//!   Viterbi);
//! * [`analyze`] — the static MiniRISC program verifier and the dynamic
//!   happens-before race detector for barrier kernels.
//!
//! See `examples/quickstart.rs` for the fastest route to a running
//! simulation, and the `bench-suite` crate for the binaries that regenerate
//! every table and figure of the paper.

pub use analyze;
pub use barrier_filter;
pub use cmp_sim;
pub use kernels;
pub use sim_isa;

/// Commonly needed items in one import: machine construction, the barrier
/// mechanisms, the shared [`Measurement`](cmp_sim::Measurement) record
/// every benchmark layer reports, the fault-injection surface, and the
/// [`RunSpec`](kernels::RunSpec) job description — the one serializable
/// value that drives in-process runs, `fastbar-serve` wire jobs and the
/// result cache alike.
pub mod prelude {
    pub use barrier_filter::{BarrierMechanism, BarrierSystem};
    pub use cmp_sim::{
        fnv64, run_with_faults, FaultKind, FaultPlan, FaultReport, Json, Machine, MachineBuilder,
        Measurement, SimConfig, SimError,
    };
    pub use kernels::{
        run, run_with, EngineKnobs, ExecSpec, FaultSpec, KernelError, KernelOutcome,
        RunAttachments, RunOutput, RunSpec, WorkloadSpec,
    };
    pub use sim_isa::{Asm, FReg, Instr, MemWidth, Program, Reg};
}
