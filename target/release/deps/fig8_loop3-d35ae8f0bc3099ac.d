/root/repo/target/release/deps/fig8_loop3-d35ae8f0bc3099ac.d: crates/bench/src/bin/fig8_loop3.rs

/root/repo/target/release/deps/fig8_loop3-d35ae8f0bc3099ac: crates/bench/src/bin/fig8_loop3.rs

crates/bench/src/bin/fig8_loop3.rs:
