/root/repo/target/release/deps/table1-4c6a8da2306f4431.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-4c6a8da2306f4431: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
