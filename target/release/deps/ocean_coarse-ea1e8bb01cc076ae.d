/root/repo/target/release/deps/ocean_coarse-ea1e8bb01cc076ae.d: crates/bench/src/bin/ocean_coarse.rs

/root/repo/target/release/deps/ocean_coarse-ea1e8bb01cc076ae: crates/bench/src/bin/ocean_coarse.rs

crates/bench/src/bin/ocean_coarse.rs:
