/root/repo/target/release/deps/throughput-499ff637acefd953.d: crates/bench/src/bin/throughput.rs

/root/repo/target/release/deps/throughput-499ff637acefd953: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
