/root/repo/target/release/deps/throughput-4a43dd001c2c3cb0.d: crates/bench/src/bin/throughput.rs

/root/repo/target/release/deps/throughput-4a43dd001c2c3cb0: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
