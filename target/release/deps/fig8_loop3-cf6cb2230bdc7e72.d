/root/repo/target/release/deps/fig8_loop3-cf6cb2230bdc7e72.d: crates/bench/src/bin/fig8_loop3.rs

/root/repo/target/release/deps/fig8_loop3-cf6cb2230bdc7e72: crates/bench/src/bin/fig8_loop3.rs

crates/bench/src/bin/fig8_loop3.rs:
