/root/repo/target/release/deps/ocean_coarse-a9842d4969f6bb18.d: crates/bench/src/bin/ocean_coarse.rs

/root/repo/target/release/deps/ocean_coarse-a9842d4969f6bb18: crates/bench/src/bin/ocean_coarse.rs

crates/bench/src/bin/ocean_coarse.rs:
