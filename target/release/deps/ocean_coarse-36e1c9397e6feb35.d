/root/repo/target/release/deps/ocean_coarse-36e1c9397e6feb35.d: crates/bench/src/bin/ocean_coarse.rs

/root/repo/target/release/deps/ocean_coarse-36e1c9397e6feb35: crates/bench/src/bin/ocean_coarse.rs

crates/bench/src/bin/ocean_coarse.rs:
