/root/repo/target/release/deps/barriers-ed80676b1bcd4b9a.d: crates/core/tests/barriers.rs

/root/repo/target/release/deps/barriers-ed80676b1bcd4b9a: crates/core/tests/barriers.rs

crates/core/tests/barriers.rs:
