/root/repo/target/release/deps/fig8_loop3-2ac9d7e8bf345098.d: crates/bench/src/bin/fig8_loop3.rs

/root/repo/target/release/deps/fig8_loop3-2ac9d7e8bf345098: crates/bench/src/bin/fig8_loop3.rs

crates/bench/src/bin/fig8_loop3.rs:
