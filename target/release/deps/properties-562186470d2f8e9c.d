/root/repo/target/release/deps/properties-562186470d2f8e9c.d: tests/properties.rs

/root/repo/target/release/deps/properties-562186470d2f8e9c: tests/properties.rs

tests/properties.rs:
