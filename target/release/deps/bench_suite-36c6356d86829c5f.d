/root/repo/target/release/deps/bench_suite-36c6356d86829c5f.d: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

/root/repo/target/release/deps/libbench_suite-36c6356d86829c5f.rlib: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

/root/repo/target/release/deps/libbench_suite-36c6356d86829c5f.rmeta: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

crates/bench/src/lib.rs:
crates/bench/src/kernel_runs.rs:
crates/bench/src/latency.rs:
crates/bench/src/report.rs:
crates/bench/src/throughput.rs:
