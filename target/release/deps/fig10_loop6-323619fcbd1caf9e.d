/root/repo/target/release/deps/fig10_loop6-323619fcbd1caf9e.d: crates/bench/src/bin/fig10_loop6.rs

/root/repo/target/release/deps/fig10_loop6-323619fcbd1caf9e: crates/bench/src/bin/fig10_loop6.rs

crates/bench/src/bin/fig10_loop6.rs:
