/root/repo/target/release/deps/fig4_latency-6adeb2d98b15212b.d: crates/bench/src/bin/fig4_latency.rs

/root/repo/target/release/deps/fig4_latency-6adeb2d98b15212b: crates/bench/src/bin/fig4_latency.rs

crates/bench/src/bin/fig4_latency.rs:
