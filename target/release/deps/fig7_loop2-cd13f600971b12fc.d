/root/repo/target/release/deps/fig7_loop2-cd13f600971b12fc.d: crates/bench/src/bin/fig7_loop2.rs

/root/repo/target/release/deps/fig7_loop2-cd13f600971b12fc: crates/bench/src/bin/fig7_loop2.rs

crates/bench/src/bin/fig7_loop2.rs:
