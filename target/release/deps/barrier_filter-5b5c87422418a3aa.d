/root/repo/target/release/deps/barrier_filter-5b5c87422418a3aa.d: crates/core/src/lib.rs crates/core/src/bank.rs crates/core/src/emit.rs crates/core/src/fsm.rs crates/core/src/mechanism.rs crates/core/src/system.rs crates/core/src/table.rs

/root/repo/target/release/deps/barrier_filter-5b5c87422418a3aa: crates/core/src/lib.rs crates/core/src/bank.rs crates/core/src/emit.rs crates/core/src/fsm.rs crates/core/src/mechanism.rs crates/core/src/system.rs crates/core/src/table.rs

crates/core/src/lib.rs:
crates/core/src/bank.rs:
crates/core/src/emit.rs:
crates/core/src/fsm.rs:
crates/core/src/mechanism.rs:
crates/core/src/system.rs:
crates/core/src/table.rs:
