/root/repo/target/release/deps/sim_isa-f51002246ab21871.d: crates/sim-isa/src/lib.rs crates/sim-isa/src/asm.rs crates/sim-isa/src/disasm.rs crates/sim-isa/src/instr.rs crates/sim-isa/src/parse.rs crates/sim-isa/src/program.rs crates/sim-isa/src/reg.rs

/root/repo/target/release/deps/libsim_isa-f51002246ab21871.rlib: crates/sim-isa/src/lib.rs crates/sim-isa/src/asm.rs crates/sim-isa/src/disasm.rs crates/sim-isa/src/instr.rs crates/sim-isa/src/parse.rs crates/sim-isa/src/program.rs crates/sim-isa/src/reg.rs

/root/repo/target/release/deps/libsim_isa-f51002246ab21871.rmeta: crates/sim-isa/src/lib.rs crates/sim-isa/src/asm.rs crates/sim-isa/src/disasm.rs crates/sim-isa/src/instr.rs crates/sim-isa/src/parse.rs crates/sim-isa/src/program.rs crates/sim-isa/src/reg.rs

crates/sim-isa/src/lib.rs:
crates/sim-isa/src/asm.rs:
crates/sim-isa/src/disasm.rs:
crates/sim-isa/src/instr.rs:
crates/sim-isa/src/parse.rs:
crates/sim-isa/src/program.rs:
crates/sim-isa/src/reg.rs:
