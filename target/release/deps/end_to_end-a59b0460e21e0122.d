/root/repo/target/release/deps/end_to_end-a59b0460e21e0122.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-a59b0460e21e0122: tests/end_to_end.rs

tests/end_to_end.rs:
