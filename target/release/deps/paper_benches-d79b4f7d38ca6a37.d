/root/repo/target/release/deps/paper_benches-d79b4f7d38ca6a37.d: crates/bench/benches/paper_benches.rs

/root/repo/target/release/deps/paper_benches-d79b4f7d38ca6a37: crates/bench/benches/paper_benches.rs

crates/bench/benches/paper_benches.rs:
