/root/repo/target/release/deps/fig6_viterbi-15acc25be71d0333.d: crates/bench/src/bin/fig6_viterbi.rs

/root/repo/target/release/deps/fig6_viterbi-15acc25be71d0333: crates/bench/src/bin/fig6_viterbi.rs

crates/bench/src/bin/fig6_viterbi.rs:
