/root/repo/target/release/deps/fig8_loop3-f597a362a7257d71.d: crates/bench/src/bin/fig8_loop3.rs

/root/repo/target/release/deps/fig8_loop3-f597a362a7257d71: crates/bench/src/bin/fig8_loop3.rs

crates/bench/src/bin/fig8_loop3.rs:
