/root/repo/target/release/deps/fig7_loop2-473e71196c52baf6.d: crates/bench/src/bin/fig7_loop2.rs

/root/repo/target/release/deps/fig7_loop2-473e71196c52baf6: crates/bench/src/bin/fig7_loop2.rs

crates/bench/src/bin/fig7_loop2.rs:
