/root/repo/target/release/deps/table1-63bd6625c31bcf91.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-63bd6625c31bcf91: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
