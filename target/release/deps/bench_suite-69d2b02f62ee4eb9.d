/root/repo/target/release/deps/bench_suite-69d2b02f62ee4eb9.d: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

/root/repo/target/release/deps/bench_suite-69d2b02f62ee4eb9: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

crates/bench/src/lib.rs:
crates/bench/src/kernel_runs.rs:
crates/bench/src/latency.rs:
crates/bench/src/report.rs:
crates/bench/src/throughput.rs:
