/root/repo/target/release/deps/machine-43b6044cff4a427b.d: crates/cmp-sim/tests/machine.rs

/root/repo/target/release/deps/machine-43b6044cff4a427b: crates/cmp-sim/tests/machine.rs

crates/cmp-sim/tests/machine.rs:
