/root/repo/target/release/deps/throughput-f3050982cbc3a412.d: crates/bench/src/bin/throughput.rs

/root/repo/target/release/deps/throughput-f3050982cbc3a412: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
