/root/repo/target/release/deps/fig7_loop2-f95075ebb3ef116b.d: crates/bench/src/bin/fig7_loop2.rs

/root/repo/target/release/deps/fig7_loop2-f95075ebb3ef116b: crates/bench/src/bin/fig7_loop2.rs

crates/bench/src/bin/fig7_loop2.rs:
