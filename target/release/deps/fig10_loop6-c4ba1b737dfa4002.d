/root/repo/target/release/deps/fig10_loop6-c4ba1b737dfa4002.d: crates/bench/src/bin/fig10_loop6.rs

/root/repo/target/release/deps/fig10_loop6-c4ba1b737dfa4002: crates/bench/src/bin/fig10_loop6.rs

crates/bench/src/bin/fig10_loop6.rs:
