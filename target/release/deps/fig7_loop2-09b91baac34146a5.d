/root/repo/target/release/deps/fig7_loop2-09b91baac34146a5.d: crates/bench/src/bin/fig7_loop2.rs

/root/repo/target/release/deps/fig7_loop2-09b91baac34146a5: crates/bench/src/bin/fig7_loop2.rs

crates/bench/src/bin/fig7_loop2.rs:
