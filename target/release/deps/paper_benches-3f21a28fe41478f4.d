/root/repo/target/release/deps/paper_benches-3f21a28fe41478f4.d: crates/bench/benches/paper_benches.rs

/root/repo/target/release/deps/paper_benches-3f21a28fe41478f4: crates/bench/benches/paper_benches.rs

crates/bench/benches/paper_benches.rs:
