/root/repo/target/release/deps/throughput-b306a5ccd93ffea5.d: crates/bench/src/bin/throughput.rs

/root/repo/target/release/deps/throughput-b306a5ccd93ffea5: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
