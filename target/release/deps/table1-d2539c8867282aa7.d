/root/repo/target/release/deps/table1-d2539c8867282aa7.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-d2539c8867282aa7: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
