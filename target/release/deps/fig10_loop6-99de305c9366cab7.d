/root/repo/target/release/deps/fig10_loop6-99de305c9366cab7.d: crates/bench/src/bin/fig10_loop6.rs

/root/repo/target/release/deps/fig10_loop6-99de305c9366cab7: crates/bench/src/bin/fig10_loop6.rs

crates/bench/src/bin/fig10_loop6.rs:
