/root/repo/target/release/deps/table1-eb07c965b7f53e32.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-eb07c965b7f53e32: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
