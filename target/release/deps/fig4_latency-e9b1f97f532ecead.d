/root/repo/target/release/deps/fig4_latency-e9b1f97f532ecead.d: crates/bench/src/bin/fig4_latency.rs

/root/repo/target/release/deps/fig4_latency-e9b1f97f532ecead: crates/bench/src/bin/fig4_latency.rs

crates/bench/src/bin/fig4_latency.rs:
