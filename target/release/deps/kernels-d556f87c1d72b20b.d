/root/repo/target/release/deps/kernels-d556f87c1d72b20b.d: crates/kernels/src/lib.rs crates/kernels/src/autocorr.rs crates/kernels/src/error.rs crates/kernels/src/harness.rs crates/kernels/src/input.rs crates/kernels/src/livermore/mod.rs crates/kernels/src/livermore/loop1.rs crates/kernels/src/livermore/loop2.rs crates/kernels/src/livermore/loop3.rs crates/kernels/src/livermore/loop4.rs crates/kernels/src/livermore/loop5.rs crates/kernels/src/livermore/loop6.rs crates/kernels/src/ocean.rs crates/kernels/src/viterbi.rs

/root/repo/target/release/deps/kernels-d556f87c1d72b20b: crates/kernels/src/lib.rs crates/kernels/src/autocorr.rs crates/kernels/src/error.rs crates/kernels/src/harness.rs crates/kernels/src/input.rs crates/kernels/src/livermore/mod.rs crates/kernels/src/livermore/loop1.rs crates/kernels/src/livermore/loop2.rs crates/kernels/src/livermore/loop3.rs crates/kernels/src/livermore/loop4.rs crates/kernels/src/livermore/loop5.rs crates/kernels/src/livermore/loop6.rs crates/kernels/src/ocean.rs crates/kernels/src/viterbi.rs

crates/kernels/src/lib.rs:
crates/kernels/src/autocorr.rs:
crates/kernels/src/error.rs:
crates/kernels/src/harness.rs:
crates/kernels/src/input.rs:
crates/kernels/src/livermore/mod.rs:
crates/kernels/src/livermore/loop1.rs:
crates/kernels/src/livermore/loop2.rs:
crates/kernels/src/livermore/loop3.rs:
crates/kernels/src/livermore/loop4.rs:
crates/kernels/src/livermore/loop5.rs:
crates/kernels/src/livermore/loop6.rs:
crates/kernels/src/ocean.rs:
crates/kernels/src/viterbi.rs:
