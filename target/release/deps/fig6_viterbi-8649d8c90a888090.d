/root/repo/target/release/deps/fig6_viterbi-8649d8c90a888090.d: crates/bench/src/bin/fig6_viterbi.rs

/root/repo/target/release/deps/fig6_viterbi-8649d8c90a888090: crates/bench/src/bin/fig6_viterbi.rs

crates/bench/src/bin/fig6_viterbi.rs:
