/root/repo/target/release/deps/barrier_filter-77edc4a967bdf439.d: crates/core/src/lib.rs crates/core/src/bank.rs crates/core/src/emit.rs crates/core/src/fsm.rs crates/core/src/mechanism.rs crates/core/src/system.rs crates/core/src/table.rs

/root/repo/target/release/deps/libbarrier_filter-77edc4a967bdf439.rlib: crates/core/src/lib.rs crates/core/src/bank.rs crates/core/src/emit.rs crates/core/src/fsm.rs crates/core/src/mechanism.rs crates/core/src/system.rs crates/core/src/table.rs

/root/repo/target/release/deps/libbarrier_filter-77edc4a967bdf439.rmeta: crates/core/src/lib.rs crates/core/src/bank.rs crates/core/src/emit.rs crates/core/src/fsm.rs crates/core/src/mechanism.rs crates/core/src/system.rs crates/core/src/table.rs

crates/core/src/lib.rs:
crates/core/src/bank.rs:
crates/core/src/emit.rs:
crates/core/src/fsm.rs:
crates/core/src/mechanism.rs:
crates/core/src/system.rs:
crates/core/src/table.rs:
