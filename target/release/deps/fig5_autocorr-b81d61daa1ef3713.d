/root/repo/target/release/deps/fig5_autocorr-b81d61daa1ef3713.d: crates/bench/src/bin/fig5_autocorr.rs

/root/repo/target/release/deps/fig5_autocorr-b81d61daa1ef3713: crates/bench/src/bin/fig5_autocorr.rs

crates/bench/src/bin/fig5_autocorr.rs:
