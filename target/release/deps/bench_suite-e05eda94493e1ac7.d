/root/repo/target/release/deps/bench_suite-e05eda94493e1ac7.d: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

/root/repo/target/release/deps/libbench_suite-e05eda94493e1ac7.rlib: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

/root/repo/target/release/deps/libbench_suite-e05eda94493e1ac7.rmeta: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

crates/bench/src/lib.rs:
crates/bench/src/kernel_runs.rs:
crates/bench/src/latency.rs:
crates/bench/src/report.rs:
crates/bench/src/throughput.rs:
