/root/repo/target/release/deps/sim_isa-8e20a9e45d9cd145.d: crates/sim-isa/src/lib.rs crates/sim-isa/src/asm.rs crates/sim-isa/src/disasm.rs crates/sim-isa/src/instr.rs crates/sim-isa/src/parse.rs crates/sim-isa/src/program.rs crates/sim-isa/src/reg.rs

/root/repo/target/release/deps/sim_isa-8e20a9e45d9cd145: crates/sim-isa/src/lib.rs crates/sim-isa/src/asm.rs crates/sim-isa/src/disasm.rs crates/sim-isa/src/instr.rs crates/sim-isa/src/parse.rs crates/sim-isa/src/program.rs crates/sim-isa/src/reg.rs

crates/sim-isa/src/lib.rs:
crates/sim-isa/src/asm.rs:
crates/sim-isa/src/disasm.rs:
crates/sim-isa/src/instr.rs:
crates/sim-isa/src/parse.rs:
crates/sim-isa/src/program.rs:
crates/sim-isa/src/reg.rs:
