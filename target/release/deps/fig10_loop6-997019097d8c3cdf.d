/root/repo/target/release/deps/fig10_loop6-997019097d8c3cdf.d: crates/bench/src/bin/fig10_loop6.rs

/root/repo/target/release/deps/fig10_loop6-997019097d8c3cdf: crates/bench/src/bin/fig10_loop6.rs

crates/bench/src/bin/fig10_loop6.rs:
