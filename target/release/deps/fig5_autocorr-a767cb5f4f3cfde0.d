/root/repo/target/release/deps/fig5_autocorr-a767cb5f4f3cfde0.d: crates/bench/src/bin/fig5_autocorr.rs

/root/repo/target/release/deps/fig5_autocorr-a767cb5f4f3cfde0: crates/bench/src/bin/fig5_autocorr.rs

crates/bench/src/bin/fig5_autocorr.rs:
