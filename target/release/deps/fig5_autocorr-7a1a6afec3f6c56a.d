/root/repo/target/release/deps/fig5_autocorr-7a1a6afec3f6c56a.d: crates/bench/src/bin/fig5_autocorr.rs

/root/repo/target/release/deps/fig5_autocorr-7a1a6afec3f6c56a: crates/bench/src/bin/fig5_autocorr.rs

crates/bench/src/bin/fig5_autocorr.rs:
