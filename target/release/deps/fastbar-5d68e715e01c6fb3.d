/root/repo/target/release/deps/fastbar-5d68e715e01c6fb3.d: src/lib.rs

/root/repo/target/release/deps/libfastbar-5d68e715e01c6fb3.rlib: src/lib.rs

/root/repo/target/release/deps/libfastbar-5d68e715e01c6fb3.rmeta: src/lib.rs

src/lib.rs:
