/root/repo/target/release/deps/ablations-db2b0f6fbb68feb0.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-db2b0f6fbb68feb0: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
