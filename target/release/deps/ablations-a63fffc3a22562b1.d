/root/repo/target/release/deps/ablations-a63fffc3a22562b1.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-a63fffc3a22562b1: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
