/root/repo/target/release/deps/fig4_latency-f54e026e139962e5.d: crates/bench/src/bin/fig4_latency.rs

/root/repo/target/release/deps/fig4_latency-f54e026e139962e5: crates/bench/src/bin/fig4_latency.rs

crates/bench/src/bin/fig4_latency.rs:
