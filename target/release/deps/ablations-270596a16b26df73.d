/root/repo/target/release/deps/ablations-270596a16b26df73.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-270596a16b26df73: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
