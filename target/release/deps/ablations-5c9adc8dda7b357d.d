/root/repo/target/release/deps/ablations-5c9adc8dda7b357d.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-5c9adc8dda7b357d: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
