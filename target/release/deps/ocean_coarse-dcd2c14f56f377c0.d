/root/repo/target/release/deps/ocean_coarse-dcd2c14f56f377c0.d: crates/bench/src/bin/ocean_coarse.rs

/root/repo/target/release/deps/ocean_coarse-dcd2c14f56f377c0: crates/bench/src/bin/ocean_coarse.rs

crates/bench/src/bin/ocean_coarse.rs:
