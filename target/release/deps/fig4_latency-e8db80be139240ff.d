/root/repo/target/release/deps/fig4_latency-e8db80be139240ff.d: crates/bench/src/bin/fig4_latency.rs

/root/repo/target/release/deps/fig4_latency-e8db80be139240ff: crates/bench/src/bin/fig4_latency.rs

crates/bench/src/bin/fig4_latency.rs:
