/root/repo/target/release/deps/fig6_viterbi-953dbaa40dc2e20e.d: crates/bench/src/bin/fig6_viterbi.rs

/root/repo/target/release/deps/fig6_viterbi-953dbaa40dc2e20e: crates/bench/src/bin/fig6_viterbi.rs

crates/bench/src/bin/fig6_viterbi.rs:
