/root/repo/target/release/deps/kernels-2c5fcb3c524e5bff.d: crates/kernels/src/lib.rs crates/kernels/src/autocorr.rs crates/kernels/src/error.rs crates/kernels/src/harness.rs crates/kernels/src/input.rs crates/kernels/src/livermore/mod.rs crates/kernels/src/livermore/loop1.rs crates/kernels/src/livermore/loop2.rs crates/kernels/src/livermore/loop3.rs crates/kernels/src/livermore/loop4.rs crates/kernels/src/livermore/loop5.rs crates/kernels/src/livermore/loop6.rs crates/kernels/src/ocean.rs crates/kernels/src/viterbi.rs

/root/repo/target/release/deps/libkernels-2c5fcb3c524e5bff.rlib: crates/kernels/src/lib.rs crates/kernels/src/autocorr.rs crates/kernels/src/error.rs crates/kernels/src/harness.rs crates/kernels/src/input.rs crates/kernels/src/livermore/mod.rs crates/kernels/src/livermore/loop1.rs crates/kernels/src/livermore/loop2.rs crates/kernels/src/livermore/loop3.rs crates/kernels/src/livermore/loop4.rs crates/kernels/src/livermore/loop5.rs crates/kernels/src/livermore/loop6.rs crates/kernels/src/ocean.rs crates/kernels/src/viterbi.rs

/root/repo/target/release/deps/libkernels-2c5fcb3c524e5bff.rmeta: crates/kernels/src/lib.rs crates/kernels/src/autocorr.rs crates/kernels/src/error.rs crates/kernels/src/harness.rs crates/kernels/src/input.rs crates/kernels/src/livermore/mod.rs crates/kernels/src/livermore/loop1.rs crates/kernels/src/livermore/loop2.rs crates/kernels/src/livermore/loop3.rs crates/kernels/src/livermore/loop4.rs crates/kernels/src/livermore/loop5.rs crates/kernels/src/livermore/loop6.rs crates/kernels/src/ocean.rs crates/kernels/src/viterbi.rs

crates/kernels/src/lib.rs:
crates/kernels/src/autocorr.rs:
crates/kernels/src/error.rs:
crates/kernels/src/harness.rs:
crates/kernels/src/input.rs:
crates/kernels/src/livermore/mod.rs:
crates/kernels/src/livermore/loop1.rs:
crates/kernels/src/livermore/loop2.rs:
crates/kernels/src/livermore/loop3.rs:
crates/kernels/src/livermore/loop4.rs:
crates/kernels/src/livermore/loop5.rs:
crates/kernels/src/livermore/loop6.rs:
crates/kernels/src/ocean.rs:
crates/kernels/src/viterbi.rs:
