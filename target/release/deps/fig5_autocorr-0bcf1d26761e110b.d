/root/repo/target/release/deps/fig5_autocorr-0bcf1d26761e110b.d: crates/bench/src/bin/fig5_autocorr.rs

/root/repo/target/release/deps/fig5_autocorr-0bcf1d26761e110b: crates/bench/src/bin/fig5_autocorr.rs

crates/bench/src/bin/fig5_autocorr.rs:
