/root/repo/target/release/deps/fig6_viterbi-9813ad85e7396b93.d: crates/bench/src/bin/fig6_viterbi.rs

/root/repo/target/release/deps/fig6_viterbi-9813ad85e7396b93: crates/bench/src/bin/fig6_viterbi.rs

crates/bench/src/bin/fig6_viterbi.rs:
