/root/repo/target/release/deps/fastbar-c4ac308b7953bacc.d: src/lib.rs

/root/repo/target/release/deps/fastbar-c4ac308b7953bacc: src/lib.rs

src/lib.rs:
