/root/repo/target/release/deps/determinism-10652c462c153e3d.d: crates/bench/tests/determinism.rs

/root/repo/target/release/deps/determinism-10652c462c153e3d: crates/bench/tests/determinism.rs

crates/bench/tests/determinism.rs:
