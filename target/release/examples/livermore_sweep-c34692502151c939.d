/root/repo/target/release/examples/livermore_sweep-c34692502151c939.d: examples/livermore_sweep.rs

/root/repo/target/release/examples/livermore_sweep-c34692502151c939: examples/livermore_sweep.rs

examples/livermore_sweep.rs:
