/root/repo/target/release/examples/custom_kernel-5c5ae7dca2bfa1bf.d: examples/custom_kernel.rs

/root/repo/target/release/examples/custom_kernel-5c5ae7dca2bfa1bf: examples/custom_kernel.rs

examples/custom_kernel.rs:
