/root/repo/target/release/examples/quickstart-aa1515fd90328663.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-aa1515fd90328663: examples/quickstart.rs

examples/quickstart.rs:
