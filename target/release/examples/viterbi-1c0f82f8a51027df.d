/root/repo/target/release/examples/viterbi-1c0f82f8a51027df.d: examples/viterbi.rs

/root/repo/target/release/examples/viterbi-1c0f82f8a51027df: examples/viterbi.rs

examples/viterbi.rs:
