/root/repo/target/release/examples/autocorrelation-4eeaafee779bb497.d: examples/autocorrelation.rs

/root/repo/target/release/examples/autocorrelation-4eeaafee779bb497: examples/autocorrelation.rs

examples/autocorrelation.rs:
