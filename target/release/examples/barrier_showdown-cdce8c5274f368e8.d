/root/repo/target/release/examples/barrier_showdown-cdce8c5274f368e8.d: examples/barrier_showdown.rs

/root/repo/target/release/examples/barrier_showdown-cdce8c5274f368e8: examples/barrier_showdown.rs

examples/barrier_showdown.rs:
