/root/repo/target/debug/examples/viterbi-b303f235b24ee281.d: examples/viterbi.rs

/root/repo/target/debug/examples/viterbi-b303f235b24ee281: examples/viterbi.rs

examples/viterbi.rs:
