/root/repo/target/debug/examples/custom_kernel-da6f9bb1c1401a6a.d: examples/custom_kernel.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_kernel-da6f9bb1c1401a6a.rmeta: examples/custom_kernel.rs Cargo.toml

examples/custom_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
