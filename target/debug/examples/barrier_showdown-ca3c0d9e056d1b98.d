/root/repo/target/debug/examples/barrier_showdown-ca3c0d9e056d1b98.d: examples/barrier_showdown.rs

/root/repo/target/debug/examples/barrier_showdown-ca3c0d9e056d1b98: examples/barrier_showdown.rs

examples/barrier_showdown.rs:
