/root/repo/target/debug/examples/barrier_showdown-fc24d359e612bc7b.d: examples/barrier_showdown.rs Cargo.toml

/root/repo/target/debug/examples/libbarrier_showdown-fc24d359e612bc7b.rmeta: examples/barrier_showdown.rs Cargo.toml

examples/barrier_showdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
