/root/repo/target/debug/examples/autocorrelation-c2f2193aee955c95.d: examples/autocorrelation.rs

/root/repo/target/debug/examples/autocorrelation-c2f2193aee955c95: examples/autocorrelation.rs

examples/autocorrelation.rs:
