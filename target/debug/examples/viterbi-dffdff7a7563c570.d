/root/repo/target/debug/examples/viterbi-dffdff7a7563c570.d: examples/viterbi.rs Cargo.toml

/root/repo/target/debug/examples/libviterbi-dffdff7a7563c570.rmeta: examples/viterbi.rs Cargo.toml

examples/viterbi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
