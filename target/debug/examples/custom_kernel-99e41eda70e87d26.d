/root/repo/target/debug/examples/custom_kernel-99e41eda70e87d26.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-99e41eda70e87d26: examples/custom_kernel.rs

examples/custom_kernel.rs:
