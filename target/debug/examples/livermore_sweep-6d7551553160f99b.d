/root/repo/target/debug/examples/livermore_sweep-6d7551553160f99b.d: examples/livermore_sweep.rs Cargo.toml

/root/repo/target/debug/examples/liblivermore_sweep-6d7551553160f99b.rmeta: examples/livermore_sweep.rs Cargo.toml

examples/livermore_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
