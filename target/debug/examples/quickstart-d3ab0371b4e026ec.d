/root/repo/target/debug/examples/quickstart-d3ab0371b4e026ec.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d3ab0371b4e026ec: examples/quickstart.rs

examples/quickstart.rs:
