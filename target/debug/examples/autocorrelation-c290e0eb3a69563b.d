/root/repo/target/debug/examples/autocorrelation-c290e0eb3a69563b.d: examples/autocorrelation.rs Cargo.toml

/root/repo/target/debug/examples/libautocorrelation-c290e0eb3a69563b.rmeta: examples/autocorrelation.rs Cargo.toml

examples/autocorrelation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
