/root/repo/target/debug/examples/livermore_sweep-6cca9f3766559364.d: examples/livermore_sweep.rs

/root/repo/target/debug/examples/livermore_sweep-6cca9f3766559364: examples/livermore_sweep.rs

examples/livermore_sweep.rs:
