/root/repo/target/debug/deps/sim_isa-e5cf56c56b429933.d: crates/sim-isa/src/lib.rs crates/sim-isa/src/asm.rs crates/sim-isa/src/disasm.rs crates/sim-isa/src/instr.rs crates/sim-isa/src/parse.rs crates/sim-isa/src/program.rs crates/sim-isa/src/reg.rs

/root/repo/target/debug/deps/libsim_isa-e5cf56c56b429933.rlib: crates/sim-isa/src/lib.rs crates/sim-isa/src/asm.rs crates/sim-isa/src/disasm.rs crates/sim-isa/src/instr.rs crates/sim-isa/src/parse.rs crates/sim-isa/src/program.rs crates/sim-isa/src/reg.rs

/root/repo/target/debug/deps/libsim_isa-e5cf56c56b429933.rmeta: crates/sim-isa/src/lib.rs crates/sim-isa/src/asm.rs crates/sim-isa/src/disasm.rs crates/sim-isa/src/instr.rs crates/sim-isa/src/parse.rs crates/sim-isa/src/program.rs crates/sim-isa/src/reg.rs

crates/sim-isa/src/lib.rs:
crates/sim-isa/src/asm.rs:
crates/sim-isa/src/disasm.rs:
crates/sim-isa/src/instr.rs:
crates/sim-isa/src/parse.rs:
crates/sim-isa/src/program.rs:
crates/sim-isa/src/reg.rs:
