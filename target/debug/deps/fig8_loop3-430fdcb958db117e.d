/root/repo/target/debug/deps/fig8_loop3-430fdcb958db117e.d: crates/bench/src/bin/fig8_loop3.rs

/root/repo/target/debug/deps/fig8_loop3-430fdcb958db117e: crates/bench/src/bin/fig8_loop3.rs

crates/bench/src/bin/fig8_loop3.rs:
