/root/repo/target/debug/deps/fig6_viterbi-a65ebc4cb70a43de.d: crates/bench/src/bin/fig6_viterbi.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_viterbi-a65ebc4cb70a43de.rmeta: crates/bench/src/bin/fig6_viterbi.rs Cargo.toml

crates/bench/src/bin/fig6_viterbi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
