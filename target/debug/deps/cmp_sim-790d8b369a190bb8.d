/root/repo/target/debug/deps/cmp_sim-790d8b369a190bb8.d: crates/cmp-sim/src/lib.rs crates/cmp-sim/src/builder.rs crates/cmp-sim/src/bus.rs crates/cmp-sim/src/cache.rs crates/cmp-sim/src/coherence.rs crates/cmp-sim/src/config.rs crates/cmp-sim/src/core.rs crates/cmp-sim/src/error.rs crates/cmp-sim/src/event_queue.rs crates/cmp-sim/src/fastmap.rs crates/cmp-sim/src/hook.rs crates/cmp-sim/src/hwnet.rs crates/cmp-sim/src/layout.rs crates/cmp-sim/src/machine.rs crates/cmp-sim/src/mem.rs crates/cmp-sim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libcmp_sim-790d8b369a190bb8.rmeta: crates/cmp-sim/src/lib.rs crates/cmp-sim/src/builder.rs crates/cmp-sim/src/bus.rs crates/cmp-sim/src/cache.rs crates/cmp-sim/src/coherence.rs crates/cmp-sim/src/config.rs crates/cmp-sim/src/core.rs crates/cmp-sim/src/error.rs crates/cmp-sim/src/event_queue.rs crates/cmp-sim/src/fastmap.rs crates/cmp-sim/src/hook.rs crates/cmp-sim/src/hwnet.rs crates/cmp-sim/src/layout.rs crates/cmp-sim/src/machine.rs crates/cmp-sim/src/mem.rs crates/cmp-sim/src/stats.rs Cargo.toml

crates/cmp-sim/src/lib.rs:
crates/cmp-sim/src/builder.rs:
crates/cmp-sim/src/bus.rs:
crates/cmp-sim/src/cache.rs:
crates/cmp-sim/src/coherence.rs:
crates/cmp-sim/src/config.rs:
crates/cmp-sim/src/core.rs:
crates/cmp-sim/src/error.rs:
crates/cmp-sim/src/event_queue.rs:
crates/cmp-sim/src/fastmap.rs:
crates/cmp-sim/src/hook.rs:
crates/cmp-sim/src/hwnet.rs:
crates/cmp-sim/src/layout.rs:
crates/cmp-sim/src/machine.rs:
crates/cmp-sim/src/mem.rs:
crates/cmp-sim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
