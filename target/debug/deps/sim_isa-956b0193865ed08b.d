/root/repo/target/debug/deps/sim_isa-956b0193865ed08b.d: crates/sim-isa/src/lib.rs crates/sim-isa/src/asm.rs crates/sim-isa/src/disasm.rs crates/sim-isa/src/instr.rs crates/sim-isa/src/parse.rs crates/sim-isa/src/program.rs crates/sim-isa/src/reg.rs

/root/repo/target/debug/deps/sim_isa-956b0193865ed08b: crates/sim-isa/src/lib.rs crates/sim-isa/src/asm.rs crates/sim-isa/src/disasm.rs crates/sim-isa/src/instr.rs crates/sim-isa/src/parse.rs crates/sim-isa/src/program.rs crates/sim-isa/src/reg.rs

crates/sim-isa/src/lib.rs:
crates/sim-isa/src/asm.rs:
crates/sim-isa/src/disasm.rs:
crates/sim-isa/src/instr.rs:
crates/sim-isa/src/parse.rs:
crates/sim-isa/src/program.rs:
crates/sim-isa/src/reg.rs:
