/root/repo/target/debug/deps/fig7_loop2-776930d6940e73eb.d: crates/bench/src/bin/fig7_loop2.rs

/root/repo/target/debug/deps/fig7_loop2-776930d6940e73eb: crates/bench/src/bin/fig7_loop2.rs

crates/bench/src/bin/fig7_loop2.rs:
