/root/repo/target/debug/deps/properties-5f0125add3c509b3.d: tests/properties.rs

/root/repo/target/debug/deps/properties-5f0125add3c509b3: tests/properties.rs

tests/properties.rs:
