/root/repo/target/debug/deps/fig10_loop6-6bf9a3232c36affc.d: crates/bench/src/bin/fig10_loop6.rs

/root/repo/target/debug/deps/fig10_loop6-6bf9a3232c36affc: crates/bench/src/bin/fig10_loop6.rs

crates/bench/src/bin/fig10_loop6.rs:
