/root/repo/target/debug/deps/throughput-674d4d75fb896bcd.d: crates/bench/src/bin/throughput.rs

/root/repo/target/debug/deps/throughput-674d4d75fb896bcd: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
