/root/repo/target/debug/deps/fig10_loop6-7510ce166caf6bce.d: crates/bench/src/bin/fig10_loop6.rs

/root/repo/target/debug/deps/fig10_loop6-7510ce166caf6bce: crates/bench/src/bin/fig10_loop6.rs

crates/bench/src/bin/fig10_loop6.rs:
