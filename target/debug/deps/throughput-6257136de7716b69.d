/root/repo/target/debug/deps/throughput-6257136de7716b69.d: crates/bench/src/bin/throughput.rs

/root/repo/target/debug/deps/throughput-6257136de7716b69: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
