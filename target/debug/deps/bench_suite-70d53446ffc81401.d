/root/repo/target/debug/deps/bench_suite-70d53446ffc81401.d: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

/root/repo/target/debug/deps/bench_suite-70d53446ffc81401: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

crates/bench/src/lib.rs:
crates/bench/src/kernel_runs.rs:
crates/bench/src/latency.rs:
crates/bench/src/report.rs:
crates/bench/src/throughput.rs:
