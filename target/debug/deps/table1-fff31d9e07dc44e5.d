/root/repo/target/debug/deps/table1-fff31d9e07dc44e5.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-fff31d9e07dc44e5: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
