/root/repo/target/debug/deps/fig6_viterbi-69d7155cafeaf756.d: crates/bench/src/bin/fig6_viterbi.rs

/root/repo/target/debug/deps/fig6_viterbi-69d7155cafeaf756: crates/bench/src/bin/fig6_viterbi.rs

crates/bench/src/bin/fig6_viterbi.rs:
