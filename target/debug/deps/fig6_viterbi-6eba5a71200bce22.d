/root/repo/target/debug/deps/fig6_viterbi-6eba5a71200bce22.d: crates/bench/src/bin/fig6_viterbi.rs

/root/repo/target/debug/deps/fig6_viterbi-6eba5a71200bce22: crates/bench/src/bin/fig6_viterbi.rs

crates/bench/src/bin/fig6_viterbi.rs:
