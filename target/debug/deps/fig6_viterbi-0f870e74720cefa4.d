/root/repo/target/debug/deps/fig6_viterbi-0f870e74720cefa4.d: crates/bench/src/bin/fig6_viterbi.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_viterbi-0f870e74720cefa4.rmeta: crates/bench/src/bin/fig6_viterbi.rs Cargo.toml

crates/bench/src/bin/fig6_viterbi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
