/root/repo/target/debug/deps/ablations-31858ece64312f5d.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-31858ece64312f5d: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
