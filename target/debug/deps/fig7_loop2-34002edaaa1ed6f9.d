/root/repo/target/debug/deps/fig7_loop2-34002edaaa1ed6f9.d: crates/bench/src/bin/fig7_loop2.rs

/root/repo/target/debug/deps/fig7_loop2-34002edaaa1ed6f9: crates/bench/src/bin/fig7_loop2.rs

crates/bench/src/bin/fig7_loop2.rs:
