/root/repo/target/debug/deps/throughput-f9545321ef3ce740.d: crates/bench/src/bin/throughput.rs Cargo.toml

/root/repo/target/debug/deps/libthroughput-f9545321ef3ce740.rmeta: crates/bench/src/bin/throughput.rs Cargo.toml

crates/bench/src/bin/throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
