/root/repo/target/debug/deps/barrier_filter-a11f96655f3c7833.d: crates/core/src/lib.rs crates/core/src/bank.rs crates/core/src/emit.rs crates/core/src/fsm.rs crates/core/src/mechanism.rs crates/core/src/system.rs crates/core/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libbarrier_filter-a11f96655f3c7833.rmeta: crates/core/src/lib.rs crates/core/src/bank.rs crates/core/src/emit.rs crates/core/src/fsm.rs crates/core/src/mechanism.rs crates/core/src/system.rs crates/core/src/table.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bank.rs:
crates/core/src/emit.rs:
crates/core/src/fsm.rs:
crates/core/src/mechanism.rs:
crates/core/src/system.rs:
crates/core/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
