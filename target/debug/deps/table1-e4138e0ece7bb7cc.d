/root/repo/target/debug/deps/table1-e4138e0ece7bb7cc.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e4138e0ece7bb7cc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
