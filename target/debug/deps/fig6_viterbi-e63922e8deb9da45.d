/root/repo/target/debug/deps/fig6_viterbi-e63922e8deb9da45.d: crates/bench/src/bin/fig6_viterbi.rs

/root/repo/target/debug/deps/fig6_viterbi-e63922e8deb9da45: crates/bench/src/bin/fig6_viterbi.rs

crates/bench/src/bin/fig6_viterbi.rs:
