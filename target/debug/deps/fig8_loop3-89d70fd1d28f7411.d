/root/repo/target/debug/deps/fig8_loop3-89d70fd1d28f7411.d: crates/bench/src/bin/fig8_loop3.rs

/root/repo/target/debug/deps/fig8_loop3-89d70fd1d28f7411: crates/bench/src/bin/fig8_loop3.rs

crates/bench/src/bin/fig8_loop3.rs:
