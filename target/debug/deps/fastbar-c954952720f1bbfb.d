/root/repo/target/debug/deps/fastbar-c954952720f1bbfb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfastbar-c954952720f1bbfb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
