/root/repo/target/debug/deps/ocean_coarse-1704b7fed17a0b35.d: crates/bench/src/bin/ocean_coarse.rs Cargo.toml

/root/repo/target/debug/deps/libocean_coarse-1704b7fed17a0b35.rmeta: crates/bench/src/bin/ocean_coarse.rs Cargo.toml

crates/bench/src/bin/ocean_coarse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
