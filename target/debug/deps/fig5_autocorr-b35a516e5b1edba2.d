/root/repo/target/debug/deps/fig5_autocorr-b35a516e5b1edba2.d: crates/bench/src/bin/fig5_autocorr.rs

/root/repo/target/debug/deps/fig5_autocorr-b35a516e5b1edba2: crates/bench/src/bin/fig5_autocorr.rs

crates/bench/src/bin/fig5_autocorr.rs:
