/root/repo/target/debug/deps/fastbar-fa8ed3bd9490eef0.d: src/lib.rs

/root/repo/target/debug/deps/libfastbar-fa8ed3bd9490eef0.rlib: src/lib.rs

/root/repo/target/debug/deps/libfastbar-fa8ed3bd9490eef0.rmeta: src/lib.rs

src/lib.rs:
