/root/repo/target/debug/deps/throughput-0caadd51540da7ce.d: crates/bench/src/bin/throughput.rs

/root/repo/target/debug/deps/throughput-0caadd51540da7ce: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
