/root/repo/target/debug/deps/fastbar-9c27e27d63f3429a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfastbar-9c27e27d63f3429a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
