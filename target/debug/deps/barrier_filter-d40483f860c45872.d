/root/repo/target/debug/deps/barrier_filter-d40483f860c45872.d: crates/core/src/lib.rs crates/core/src/bank.rs crates/core/src/emit.rs crates/core/src/fsm.rs crates/core/src/mechanism.rs crates/core/src/system.rs crates/core/src/table.rs

/root/repo/target/debug/deps/libbarrier_filter-d40483f860c45872.rlib: crates/core/src/lib.rs crates/core/src/bank.rs crates/core/src/emit.rs crates/core/src/fsm.rs crates/core/src/mechanism.rs crates/core/src/system.rs crates/core/src/table.rs

/root/repo/target/debug/deps/libbarrier_filter-d40483f860c45872.rmeta: crates/core/src/lib.rs crates/core/src/bank.rs crates/core/src/emit.rs crates/core/src/fsm.rs crates/core/src/mechanism.rs crates/core/src/system.rs crates/core/src/table.rs

crates/core/src/lib.rs:
crates/core/src/bank.rs:
crates/core/src/emit.rs:
crates/core/src/fsm.rs:
crates/core/src/mechanism.rs:
crates/core/src/system.rs:
crates/core/src/table.rs:
