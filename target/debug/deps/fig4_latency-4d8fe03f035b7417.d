/root/repo/target/debug/deps/fig4_latency-4d8fe03f035b7417.d: crates/bench/src/bin/fig4_latency.rs

/root/repo/target/debug/deps/fig4_latency-4d8fe03f035b7417: crates/bench/src/bin/fig4_latency.rs

crates/bench/src/bin/fig4_latency.rs:
