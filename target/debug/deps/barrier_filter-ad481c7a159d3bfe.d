/root/repo/target/debug/deps/barrier_filter-ad481c7a159d3bfe.d: crates/core/src/lib.rs crates/core/src/bank.rs crates/core/src/emit.rs crates/core/src/fsm.rs crates/core/src/mechanism.rs crates/core/src/system.rs crates/core/src/table.rs

/root/repo/target/debug/deps/barrier_filter-ad481c7a159d3bfe: crates/core/src/lib.rs crates/core/src/bank.rs crates/core/src/emit.rs crates/core/src/fsm.rs crates/core/src/mechanism.rs crates/core/src/system.rs crates/core/src/table.rs

crates/core/src/lib.rs:
crates/core/src/bank.rs:
crates/core/src/emit.rs:
crates/core/src/fsm.rs:
crates/core/src/mechanism.rs:
crates/core/src/system.rs:
crates/core/src/table.rs:
