/root/repo/target/debug/deps/fig4_latency-10efb5b55c98ba08.d: crates/bench/src/bin/fig4_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_latency-10efb5b55c98ba08.rmeta: crates/bench/src/bin/fig4_latency.rs Cargo.toml

crates/bench/src/bin/fig4_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
