/root/repo/target/debug/deps/ocean_coarse-fd36c58b4f3c45fb.d: crates/bench/src/bin/ocean_coarse.rs

/root/repo/target/debug/deps/ocean_coarse-fd36c58b4f3c45fb: crates/bench/src/bin/ocean_coarse.rs

crates/bench/src/bin/ocean_coarse.rs:
