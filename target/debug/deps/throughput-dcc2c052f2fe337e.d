/root/repo/target/debug/deps/throughput-dcc2c052f2fe337e.d: crates/bench/src/bin/throughput.rs Cargo.toml

/root/repo/target/debug/deps/libthroughput-dcc2c052f2fe337e.rmeta: crates/bench/src/bin/throughput.rs Cargo.toml

crates/bench/src/bin/throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
