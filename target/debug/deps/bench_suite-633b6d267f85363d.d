/root/repo/target/debug/deps/bench_suite-633b6d267f85363d.d: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

/root/repo/target/debug/deps/libbench_suite-633b6d267f85363d.rlib: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

/root/repo/target/debug/deps/libbench_suite-633b6d267f85363d.rmeta: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

crates/bench/src/lib.rs:
crates/bench/src/kernel_runs.rs:
crates/bench/src/latency.rs:
crates/bench/src/report.rs:
crates/bench/src/throughput.rs:
