/root/repo/target/debug/deps/cmp_sim-2838b4b18fb26431.d: crates/cmp-sim/src/lib.rs crates/cmp-sim/src/builder.rs crates/cmp-sim/src/bus.rs crates/cmp-sim/src/cache.rs crates/cmp-sim/src/coherence.rs crates/cmp-sim/src/config.rs crates/cmp-sim/src/core.rs crates/cmp-sim/src/error.rs crates/cmp-sim/src/event_queue.rs crates/cmp-sim/src/fastmap.rs crates/cmp-sim/src/hook.rs crates/cmp-sim/src/hwnet.rs crates/cmp-sim/src/layout.rs crates/cmp-sim/src/machine.rs crates/cmp-sim/src/mem.rs crates/cmp-sim/src/stats.rs

/root/repo/target/debug/deps/cmp_sim-2838b4b18fb26431: crates/cmp-sim/src/lib.rs crates/cmp-sim/src/builder.rs crates/cmp-sim/src/bus.rs crates/cmp-sim/src/cache.rs crates/cmp-sim/src/coherence.rs crates/cmp-sim/src/config.rs crates/cmp-sim/src/core.rs crates/cmp-sim/src/error.rs crates/cmp-sim/src/event_queue.rs crates/cmp-sim/src/fastmap.rs crates/cmp-sim/src/hook.rs crates/cmp-sim/src/hwnet.rs crates/cmp-sim/src/layout.rs crates/cmp-sim/src/machine.rs crates/cmp-sim/src/mem.rs crates/cmp-sim/src/stats.rs

crates/cmp-sim/src/lib.rs:
crates/cmp-sim/src/builder.rs:
crates/cmp-sim/src/bus.rs:
crates/cmp-sim/src/cache.rs:
crates/cmp-sim/src/coherence.rs:
crates/cmp-sim/src/config.rs:
crates/cmp-sim/src/core.rs:
crates/cmp-sim/src/error.rs:
crates/cmp-sim/src/event_queue.rs:
crates/cmp-sim/src/fastmap.rs:
crates/cmp-sim/src/hook.rs:
crates/cmp-sim/src/hwnet.rs:
crates/cmp-sim/src/layout.rs:
crates/cmp-sim/src/machine.rs:
crates/cmp-sim/src/mem.rs:
crates/cmp-sim/src/stats.rs:
