/root/repo/target/debug/deps/fig10_loop6-8cbecd50b429727f.d: crates/bench/src/bin/fig10_loop6.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_loop6-8cbecd50b429727f.rmeta: crates/bench/src/bin/fig10_loop6.rs Cargo.toml

crates/bench/src/bin/fig10_loop6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
