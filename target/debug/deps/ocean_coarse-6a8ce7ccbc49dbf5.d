/root/repo/target/debug/deps/ocean_coarse-6a8ce7ccbc49dbf5.d: crates/bench/src/bin/ocean_coarse.rs

/root/repo/target/debug/deps/ocean_coarse-6a8ce7ccbc49dbf5: crates/bench/src/bin/ocean_coarse.rs

crates/bench/src/bin/ocean_coarse.rs:
