/root/repo/target/debug/deps/fig4_latency-9b01fa18e7e24cde.d: crates/bench/src/bin/fig4_latency.rs

/root/repo/target/debug/deps/fig4_latency-9b01fa18e7e24cde: crates/bench/src/bin/fig4_latency.rs

crates/bench/src/bin/fig4_latency.rs:
