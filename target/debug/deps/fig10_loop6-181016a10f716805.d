/root/repo/target/debug/deps/fig10_loop6-181016a10f716805.d: crates/bench/src/bin/fig10_loop6.rs

/root/repo/target/debug/deps/fig10_loop6-181016a10f716805: crates/bench/src/bin/fig10_loop6.rs

crates/bench/src/bin/fig10_loop6.rs:
