/root/repo/target/debug/deps/properties-ff168badc6a28b0d.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ff168badc6a28b0d.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
