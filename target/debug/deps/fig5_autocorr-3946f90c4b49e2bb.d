/root/repo/target/debug/deps/fig5_autocorr-3946f90c4b49e2bb.d: crates/bench/src/bin/fig5_autocorr.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_autocorr-3946f90c4b49e2bb.rmeta: crates/bench/src/bin/fig5_autocorr.rs Cargo.toml

crates/bench/src/bin/fig5_autocorr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
