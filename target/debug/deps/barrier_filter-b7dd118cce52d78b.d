/root/repo/target/debug/deps/barrier_filter-b7dd118cce52d78b.d: crates/core/src/lib.rs crates/core/src/bank.rs crates/core/src/emit.rs crates/core/src/fsm.rs crates/core/src/mechanism.rs crates/core/src/system.rs crates/core/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libbarrier_filter-b7dd118cce52d78b.rmeta: crates/core/src/lib.rs crates/core/src/bank.rs crates/core/src/emit.rs crates/core/src/fsm.rs crates/core/src/mechanism.rs crates/core/src/system.rs crates/core/src/table.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bank.rs:
crates/core/src/emit.rs:
crates/core/src/fsm.rs:
crates/core/src/mechanism.rs:
crates/core/src/system.rs:
crates/core/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
