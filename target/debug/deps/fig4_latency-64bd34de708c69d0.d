/root/repo/target/debug/deps/fig4_latency-64bd34de708c69d0.d: crates/bench/src/bin/fig4_latency.rs

/root/repo/target/debug/deps/fig4_latency-64bd34de708c69d0: crates/bench/src/bin/fig4_latency.rs

crates/bench/src/bin/fig4_latency.rs:
