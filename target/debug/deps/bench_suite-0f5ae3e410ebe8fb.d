/root/repo/target/debug/deps/bench_suite-0f5ae3e410ebe8fb.d: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

/root/repo/target/debug/deps/libbench_suite-0f5ae3e410ebe8fb.rlib: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

/root/repo/target/debug/deps/libbench_suite-0f5ae3e410ebe8fb.rmeta: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs

crates/bench/src/lib.rs:
crates/bench/src/kernel_runs.rs:
crates/bench/src/latency.rs:
crates/bench/src/report.rs:
crates/bench/src/throughput.rs:
