/root/repo/target/debug/deps/fig7_loop2-a1c529188259873f.d: crates/bench/src/bin/fig7_loop2.rs

/root/repo/target/debug/deps/fig7_loop2-a1c529188259873f: crates/bench/src/bin/fig7_loop2.rs

crates/bench/src/bin/fig7_loop2.rs:
