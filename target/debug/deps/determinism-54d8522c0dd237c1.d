/root/repo/target/debug/deps/determinism-54d8522c0dd237c1.d: crates/bench/tests/determinism.rs

/root/repo/target/debug/deps/determinism-54d8522c0dd237c1: crates/bench/tests/determinism.rs

crates/bench/tests/determinism.rs:
