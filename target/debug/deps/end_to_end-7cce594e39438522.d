/root/repo/target/debug/deps/end_to_end-7cce594e39438522.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7cce594e39438522: tests/end_to_end.rs

tests/end_to_end.rs:
