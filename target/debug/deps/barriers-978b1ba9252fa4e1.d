/root/repo/target/debug/deps/barriers-978b1ba9252fa4e1.d: crates/core/tests/barriers.rs Cargo.toml

/root/repo/target/debug/deps/libbarriers-978b1ba9252fa4e1.rmeta: crates/core/tests/barriers.rs Cargo.toml

crates/core/tests/barriers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
