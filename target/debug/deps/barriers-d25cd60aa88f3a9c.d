/root/repo/target/debug/deps/barriers-d25cd60aa88f3a9c.d: crates/core/tests/barriers.rs

/root/repo/target/debug/deps/barriers-d25cd60aa88f3a9c: crates/core/tests/barriers.rs

crates/core/tests/barriers.rs:
