/root/repo/target/debug/deps/ocean_coarse-6ebcae073621eb19.d: crates/bench/src/bin/ocean_coarse.rs Cargo.toml

/root/repo/target/debug/deps/libocean_coarse-6ebcae073621eb19.rmeta: crates/bench/src/bin/ocean_coarse.rs Cargo.toml

crates/bench/src/bin/ocean_coarse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
