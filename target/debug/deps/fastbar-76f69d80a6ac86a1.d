/root/repo/target/debug/deps/fastbar-76f69d80a6ac86a1.d: src/lib.rs

/root/repo/target/debug/deps/fastbar-76f69d80a6ac86a1: src/lib.rs

src/lib.rs:
