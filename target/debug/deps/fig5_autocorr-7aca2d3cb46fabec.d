/root/repo/target/debug/deps/fig5_autocorr-7aca2d3cb46fabec.d: crates/bench/src/bin/fig5_autocorr.rs

/root/repo/target/debug/deps/fig5_autocorr-7aca2d3cb46fabec: crates/bench/src/bin/fig5_autocorr.rs

crates/bench/src/bin/fig5_autocorr.rs:
