/root/repo/target/debug/deps/ablations-a5c12a8e46d345d4.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-a5c12a8e46d345d4: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
