/root/repo/target/debug/deps/fig7_loop2-3a04df353d13f9b6.d: crates/bench/src/bin/fig7_loop2.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_loop2-3a04df353d13f9b6.rmeta: crates/bench/src/bin/fig7_loop2.rs Cargo.toml

crates/bench/src/bin/fig7_loop2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
