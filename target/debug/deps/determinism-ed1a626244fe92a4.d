/root/repo/target/debug/deps/determinism-ed1a626244fe92a4.d: crates/bench/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-ed1a626244fe92a4.rmeta: crates/bench/tests/determinism.rs Cargo.toml

crates/bench/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
