/root/repo/target/debug/deps/kernels-ffcee94109df0a1d.d: crates/kernels/src/lib.rs crates/kernels/src/autocorr.rs crates/kernels/src/error.rs crates/kernels/src/harness.rs crates/kernels/src/input.rs crates/kernels/src/livermore/mod.rs crates/kernels/src/livermore/loop1.rs crates/kernels/src/livermore/loop2.rs crates/kernels/src/livermore/loop3.rs crates/kernels/src/livermore/loop4.rs crates/kernels/src/livermore/loop5.rs crates/kernels/src/livermore/loop6.rs crates/kernels/src/ocean.rs crates/kernels/src/viterbi.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-ffcee94109df0a1d.rmeta: crates/kernels/src/lib.rs crates/kernels/src/autocorr.rs crates/kernels/src/error.rs crates/kernels/src/harness.rs crates/kernels/src/input.rs crates/kernels/src/livermore/mod.rs crates/kernels/src/livermore/loop1.rs crates/kernels/src/livermore/loop2.rs crates/kernels/src/livermore/loop3.rs crates/kernels/src/livermore/loop4.rs crates/kernels/src/livermore/loop5.rs crates/kernels/src/livermore/loop6.rs crates/kernels/src/ocean.rs crates/kernels/src/viterbi.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/autocorr.rs:
crates/kernels/src/error.rs:
crates/kernels/src/harness.rs:
crates/kernels/src/input.rs:
crates/kernels/src/livermore/mod.rs:
crates/kernels/src/livermore/loop1.rs:
crates/kernels/src/livermore/loop2.rs:
crates/kernels/src/livermore/loop3.rs:
crates/kernels/src/livermore/loop4.rs:
crates/kernels/src/livermore/loop5.rs:
crates/kernels/src/livermore/loop6.rs:
crates/kernels/src/ocean.rs:
crates/kernels/src/viterbi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
