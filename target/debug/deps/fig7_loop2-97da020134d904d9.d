/root/repo/target/debug/deps/fig7_loop2-97da020134d904d9.d: crates/bench/src/bin/fig7_loop2.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_loop2-97da020134d904d9.rmeta: crates/bench/src/bin/fig7_loop2.rs Cargo.toml

crates/bench/src/bin/fig7_loop2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
