/root/repo/target/debug/deps/ablations-e34c9e8115238703.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-e34c9e8115238703.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
