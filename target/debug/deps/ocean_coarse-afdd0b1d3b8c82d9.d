/root/repo/target/debug/deps/ocean_coarse-afdd0b1d3b8c82d9.d: crates/bench/src/bin/ocean_coarse.rs

/root/repo/target/debug/deps/ocean_coarse-afdd0b1d3b8c82d9: crates/bench/src/bin/ocean_coarse.rs

crates/bench/src/bin/ocean_coarse.rs:
