/root/repo/target/debug/deps/machine-0e4b25e86cd20522.d: crates/cmp-sim/tests/machine.rs

/root/repo/target/debug/deps/machine-0e4b25e86cd20522: crates/cmp-sim/tests/machine.rs

crates/cmp-sim/tests/machine.rs:
