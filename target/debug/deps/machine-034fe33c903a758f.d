/root/repo/target/debug/deps/machine-034fe33c903a758f.d: crates/cmp-sim/tests/machine.rs Cargo.toml

/root/repo/target/debug/deps/libmachine-034fe33c903a758f.rmeta: crates/cmp-sim/tests/machine.rs Cargo.toml

crates/cmp-sim/tests/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
