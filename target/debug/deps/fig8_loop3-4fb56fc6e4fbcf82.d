/root/repo/target/debug/deps/fig8_loop3-4fb56fc6e4fbcf82.d: crates/bench/src/bin/fig8_loop3.rs

/root/repo/target/debug/deps/fig8_loop3-4fb56fc6e4fbcf82: crates/bench/src/bin/fig8_loop3.rs

crates/bench/src/bin/fig8_loop3.rs:
