/root/repo/target/debug/deps/table1-00e2877ed5eaeee9.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-00e2877ed5eaeee9: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
