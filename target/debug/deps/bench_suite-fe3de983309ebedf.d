/root/repo/target/debug/deps/bench_suite-fe3de983309ebedf.d: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs Cargo.toml

/root/repo/target/debug/deps/libbench_suite-fe3de983309ebedf.rmeta: crates/bench/src/lib.rs crates/bench/src/kernel_runs.rs crates/bench/src/latency.rs crates/bench/src/report.rs crates/bench/src/throughput.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/kernel_runs.rs:
crates/bench/src/latency.rs:
crates/bench/src/report.rs:
crates/bench/src/throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
