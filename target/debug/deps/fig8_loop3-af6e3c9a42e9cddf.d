/root/repo/target/debug/deps/fig8_loop3-af6e3c9a42e9cddf.d: crates/bench/src/bin/fig8_loop3.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_loop3-af6e3c9a42e9cddf.rmeta: crates/bench/src/bin/fig8_loop3.rs Cargo.toml

crates/bench/src/bin/fig8_loop3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
