/root/repo/target/debug/deps/fig5_autocorr-7bd7367466f4adca.d: crates/bench/src/bin/fig5_autocorr.rs

/root/repo/target/debug/deps/fig5_autocorr-7bd7367466f4adca: crates/bench/src/bin/fig5_autocorr.rs

crates/bench/src/bin/fig5_autocorr.rs:
