/root/repo/target/debug/deps/sim_isa-bc0df7db79bcf3b8.d: crates/sim-isa/src/lib.rs crates/sim-isa/src/asm.rs crates/sim-isa/src/disasm.rs crates/sim-isa/src/instr.rs crates/sim-isa/src/parse.rs crates/sim-isa/src/program.rs crates/sim-isa/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libsim_isa-bc0df7db79bcf3b8.rmeta: crates/sim-isa/src/lib.rs crates/sim-isa/src/asm.rs crates/sim-isa/src/disasm.rs crates/sim-isa/src/instr.rs crates/sim-isa/src/parse.rs crates/sim-isa/src/program.rs crates/sim-isa/src/reg.rs Cargo.toml

crates/sim-isa/src/lib.rs:
crates/sim-isa/src/asm.rs:
crates/sim-isa/src/disasm.rs:
crates/sim-isa/src/instr.rs:
crates/sim-isa/src/parse.rs:
crates/sim-isa/src/program.rs:
crates/sim-isa/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
