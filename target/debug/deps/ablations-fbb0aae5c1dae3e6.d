/root/repo/target/debug/deps/ablations-fbb0aae5c1dae3e6.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-fbb0aae5c1dae3e6: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
